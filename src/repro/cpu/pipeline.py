"""The out-of-order scoreboard pipeline — the timing heart of the simulator.

Rather than a cycle-by-cycle loop (prohibitively slow in Python for
multi-hundred-thousand-instruction traces), each dynamic instruction is
processed once, O(1), through a scoreboard that tracks:

- **fetch bandwidth** — ``width`` instructions per cycle;
- **ROB occupancy**   — fetch stalls when 192 entries are in flight;
- **load/store queues** — issue stalls when the 32-entry queues are full;
- **MCQ occupancy**   — memory instructions stall at issue while the MCU
  is full, the back-pressure effect of §V-A / §IX-A;
- **data dependencies** — through per-instruction ``deps`` distances;
- **execution latencies** — ALU/FP/crypto fixed, loads from the cache
  hierarchy, bounds validation from the MCU;
- **delayed retirement** — an instruction may not commit until its bounds
  validation completes (precise exceptions, §III-C.4);
- **branch refills**  — mispredicted branches stall fetch until resolution
  plus the refill penalty.  A branch whose resolution is already covered
  by other stalls costs nothing extra — which is how the paper's
  "back-pressure prevented aggressive speculation" speedups (§IX-A)
  emerge naturally.

This is the standard first-order analytical OoO model; it preserves the
relative effects the paper's evaluation discusses while remaining fast.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..config import SystemConfig
from ..cache.hierarchy import MemoryHierarchy
from ..core.mcu import MemoryCheckUnit
from ..isa.instructions import DEFAULT_LATENCY, Op
from ..isa.program import Program

if TYPE_CHECKING:
    from ..obs import Observability

#: Ring size for completion-time lookback; deps must be closer than this.
_RING = 512
_RING_MASK = _RING - 1

#: Pipeline depth from fetch to issue (front-end stages).
_FRONTEND_DEPTH = 4

#: Instructions between MCQ-occupancy counter samples in a traced run —
#: frequent enough to plot back-pressure, sparse enough not to dominate
#: the event ring.
_MCQ_SAMPLE_MASK = 511

#: Concurrent bounds-check walks the MCU sustains (its bounds-line ports).
#: A port is busy from check start until the bounds data returns, so both
#: hit-bandwidth-bound workloads (hmmer: >99 % signed, high IPC) and
#: miss-latency-bound ones (gcc: bounds lines falling out of a thrashed
#: L2) queue behind the MCU — the two §IX-A overhead stories.
_MCU_PORTS = 2


@dataclass
class PipelineResult:
    """Timing outcome of one program run."""

    cycles: float
    instructions: int
    branch_mispredicts: int = 0
    mcq_stall_cycles: float = 0.0
    rob_stall_cycles: float = 0.0
    lsq_stall_cycles: float = 0.0
    validation_faults: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def publish_metrics(self, registry) -> None:
        """Harvest the timing outcome into a ``MetricsRegistry``."""
        registry.count("pipeline.instructions", self.instructions)
        registry.count("pipeline.branch_mispredicts", self.branch_mispredicts)
        registry.count("pipeline.validation_faults", self.validation_faults)
        registry.set_gauge("pipeline.cycles", self.cycles)
        registry.set_gauge("pipeline.ipc", self.ipc)
        registry.set_gauge("pipeline.mcq_stall_cycles", self.mcq_stall_cycles)
        registry.set_gauge("pipeline.rob_stall_cycles", self.rob_stall_cycles)
        registry.set_gauge("pipeline.lsq_stall_cycles", self.lsq_stall_cycles)


class PipelineModel:
    """Scoreboard OoO model parameterised by a :class:`SystemConfig`."""

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy,
        mcu: Optional[MemoryCheckUnit] = None,
        va_mask: int = (1 << 46) - 1,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.mcu = mcu
        self.va_mask = va_mask
        self.obs = obs

    def run(self, program: Program) -> PipelineResult:
        core = self.config.core
        width = core.width
        fetch_step = 1.0 / width
        penalty = core.branch_mispredict_penalty
        mcu = self.mcu
        hierarchy = self.hierarchy
        va_mask = self.va_mask
        # Hot-loop locals: tracing costs nothing when no tracer is attached
        # (one `is not None` test per memory instruction).
        obs = self.obs
        tracer = obs.tracer if obs is not None else None

        completion_ring = [0.0] * _RING
        rob = deque()
        load_queue = deque()
        store_queue = deque()
        mcq = deque()
        mcq_capacity = core.mcq_entries

        fetch_time = 0.0
        commit_cursor = 0.0
        last_commit = 0.0
        stall_until = 0.0

        mispredicts = 0
        mcq_stall = 0.0
        rob_stall = 0.0
        lsq_stall = 0.0
        faults = 0
        retired = 0
        mcu_ports = [0.0] * _MCU_PORTS

        for i, inst in enumerate(program.instructions):
            op = inst.op
            if op is Op.MALLOC_MARK or op is Op.FREE_MARK:
                completion_ring[i & _RING_MASK] = fetch_time
                continue

            # ---- fetch: bandwidth, branch refill, ROB occupancy ----------
            if stall_until > fetch_time:
                fetch_time = stall_until
            if len(rob) >= core.rob_entries:
                head = rob.popleft()
                if head > fetch_time:
                    rob_stall += head - fetch_time
                    fetch_time = head
            fetch_time += fetch_step

            # ---- dependencies -------------------------------------------
            ready = fetch_time + _FRONTEND_DEPTH
            for d in inst.deps:
                t = completion_ring[(i - d) & _RING_MASK]
                if t > ready:
                    ready = t

            # ---- structural hazards at issue ----------------------------
            is_load = op is Op.LOAD
            is_store = op is Op.STORE
            if is_load:
                if len(load_queue) >= core.load_queue_entries:
                    head = load_queue.popleft()
                    if head > ready:
                        lsq_stall += head - ready
                        ready = head
            elif is_store:
                if len(store_queue) >= core.store_queue_entries:
                    head = store_queue.popleft()
                    if head > ready:
                        lsq_stall += head - ready
                        ready = head

            # §V-A: every memory instruction is co-issued to the MCU (and so
            # occupies an MCQ entry); only signed ones pay validation.
            is_table_op = op is Op.BNDSTR or op is Op.BNDCLR
            enters_mcu = mcu is not None and (is_load or is_store or is_table_op)
            needs_validation = mcu is not None and (
                is_table_op or ((is_load or is_store) and inst.address > va_mask)
            )
            if enters_mcu and len(mcq) >= mcq_capacity:
                head = mcq.popleft()
                if head > ready:
                    mcq_stall += head - ready
                    ready = head

            issue = ready
            if tracer is not None:
                # The pipeline owns "now": every event the MCU emits while
                # validating this instruction stamps at its issue cycle.
                tracer.cycle = issue
                if enters_mcu:
                    tracer.emit("mcq.enqueue", occupancy=len(mcq), op=op.name)
                if (i & _MCQ_SAMPLE_MASK) == 0:
                    tracer.emit("mcq.occupancy", phase="C", entries=len(mcq))

            # ---- execute -------------------------------------------------
            check_done = issue
            if is_load:
                latency = hierarchy.access_data(inst.address & va_mask, False)
                completion = issue + latency
            elif is_store:
                hierarchy.access_data(inst.address & va_mask, True)
                completion = issue + 1.0
            elif op is Op.WCHK:
                # Watchdog check µop: loads its metadata record.
                latency = hierarchy.access_metadata(inst.address, False)
                completion = issue + latency
            else:
                base = inst.latency if inst.latency else DEFAULT_LATENCY[op]
                completion = issue + base

            # ---- bounds validation (MCU) ---------------------------------
            mcq_busy_until = 0.0
            if needs_validation:
                if op is Op.BNDSTR:
                    outcome = mcu.bounds_store(inst.address, inst.size)
                elif op is Op.BNDCLR:
                    outcome = mcu.bounds_clear(inst.address)
                else:
                    outcome = mcu.check_access(inst.address, is_store=is_store)
                if not outcome.ok:
                    faults += 1
                if is_table_op:
                    # Fig. 8b: bndstr/bndclr retire from the ROB and send
                    # their store afterwards (BndStr waits for Committed);
                    # the walk occupies the MCQ but does not delay commit.
                    mcq_busy_until = issue + outcome.latency
                else:
                    # Loads/stores may not retire until validated (precise
                    # exceptions, §III-C.4): delayed retirement, behind the
                    # MCU's bounds-check ports (busy until data returns).
                    port = 0 if mcu_ports[0] <= mcu_ports[1] else 1
                    check_start = issue if issue > mcu_ports[port] else mcu_ports[port]
                    check_done = check_start + outcome.latency
                    mcu_ports[port] = check_done

            # ---- commit (in-order, width per cycle, delayed retirement) --
            ready_commit = completion if completion > check_done else check_done
            if ready_commit < last_commit:
                ready_commit = last_commit
            commit_cursor += fetch_step
            commit_time = ready_commit if ready_commit > commit_cursor else commit_cursor
            commit_cursor = commit_time
            last_commit = commit_time

            rob.append(commit_time)
            if is_load:
                # LSQ entries live until commit (gem5-style in-order drain).
                load_queue.append(commit_time)
            elif is_store:
                store_queue.append(commit_time)
            if enters_mcu:
                # MCQ entries deallocate at the head, once Done + committed;
                # a bndstr may finish its walk after it left the ROB.
                mcq.append(commit_time if commit_time > mcq_busy_until else mcq_busy_until)

            # ---- branch resolution ---------------------------------------
            if op is Op.BRANCH and inst.mispredicted:
                mispredicts += 1
                effective_penalty = penalty
                if mcu is not None:
                    # §IX-A: MCQ back-pressure on the issue stage prevents
                    # aggressive speculation — fewer wrong-path instructions
                    # enter the pipe, so recovery from a misprediction is
                    # cheaper.  Model: a congested MCQ discounts the refill
                    # penalty.  This is what makes milc/namd/gobmk/astar
                    # slightly *faster* than baseline under AOS.
                    while mcq and mcq[0] <= fetch_time:
                        mcq.popleft()  # drain deallocated entries
                    if len(mcq) >= 0.75 * mcq_capacity:
                        effective_penalty = penalty * 0.7
                resolve = completion + effective_penalty
                if resolve > stall_until:
                    stall_until = resolve

            completion_ring[i & _RING_MASK] = completion
            retired += 1

        return PipelineResult(
            cycles=commit_cursor,
            instructions=retired,
            branch_mispredicts=mispredicts,
            mcq_stall_cycles=mcq_stall,
            rob_stall_cycles=rob_stall,
            lsq_stall_cycles=lsq_stall,
            validation_faults=faults,
        )

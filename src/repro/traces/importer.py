"""Trace ingestion: record stream -> WorkloadTrace -> runnable Program.

The importer is the bridge from the wire formats to the existing
pipeline: it reconstructs exactly the
:class:`~repro.workloads.WorkloadTrace` object the synthetic generator
emits, so the compiler passes, both simulation kernels, the supervision
layer and the chaos interpreter all run ingested traces unchanged.  A
recorded synthetic trace therefore re-imports *equal* to the original
(dataclass equality), which is what makes the generator -> export ->
import -> simulate round-trip byte-identical.

Ingestion is strict: schema violations surface from the codec as
:class:`~repro.errors.TraceDecodeError`, and streams that decode but
describe an impossible program (duplicate ids, frees of unknown objects,
double frees, preamble rows after window events) raise
:class:`~repro.errors.TraceSemanticError` — never a silent partial
program.  Out-of-bounds offsets and accesses to freed objects are *not*
errors: they are how attack traces express OOB and use-after-free, and
the lowering executes them for real.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import TraceDecodeError, TraceSemanticError
from ..workloads.generator import WorkloadTrace
from ..workloads.profiles import WorkloadProfile
from .codec import TraceReader, open_trace
from .schema import TraceHeader, record_to_event

_PROFILE_FIELDS = {f.name: f for f in dataclasses.fields(WorkloadProfile)}


def profile_from_payload(payload: dict) -> WorkloadProfile:
    """Reconstruct an embedded :class:`WorkloadProfile` from header JSON."""
    if not isinstance(payload, dict):
        raise TraceDecodeError("embedded profile must be a JSON object")
    unknown = sorted(set(payload) - set(_PROFILE_FIELDS))
    if unknown:
        raise TraceDecodeError(f"embedded profile: unknown fields {unknown}")
    missing = sorted(set(_PROFILE_FIELDS) - set(payload))
    if missing:
        raise TraceDecodeError(f"embedded profile: missing fields {missing}")
    kwargs = dict(payload)
    classes = kwargs.get("size_classes")
    if not isinstance(classes, (list, tuple)) or not classes:
        raise TraceDecodeError("embedded profile: size_classes must be a list")
    try:
        kwargs["size_classes"] = tuple(
            (int(size), float(weight)) for size, weight in classes
        )
    except (TypeError, ValueError) as exc:
        raise TraceDecodeError(
            f"embedded profile: malformed size_classes ({exc})"
        ) from exc
    try:
        return WorkloadProfile(**kwargs)
    except Exception as exc:  # WorkloadError from __post_init__, TypeError...
        raise TraceDecodeError(f"embedded profile: invalid ({exc})") from exc


def synthesize_profile(
    name: str, allocations: int, deallocations: int, max_active: int
) -> WorkloadProfile:
    """A neutral profile for externally captured traces (no embedded one).

    Only the fields the lowering actually reads (``dep_prob``,
    ``ilp_distance`` — left at their defaults) and the Table-II-style
    bookkeeping derived from the record stream matter; the generator-only
    knobs are never consulted for an ingested trace.
    """
    return WorkloadProfile(
        name=name,
        description="ingested trace (no embedded profile)",
        table_max_active=max_active,
        table_allocations=allocations,
        table_deallocations=deallocations,
        initial_live=max(max_active, 1),
    )


def trace_from_reader(reader: TraceReader) -> WorkloadTrace:
    """Build a :class:`WorkloadTrace` from one open reader (consumes it).

    Performs the semantic validation pass while streaming; the codec's
    iterator supplies the wire-level validation (end marker, counts,
    truncation, unknown kinds).
    """
    header = reader.header
    preamble: List[Tuple[int, int]] = []
    events: List[tuple] = []
    object_sizes: Dict[int, int] = {}
    freed: set = set()
    window_started = False
    live = 0
    peak_live = 0
    allocations = 0
    deallocations = 0

    for record in reader:
        kind = record.kind
        if kind == "note":
            continue
        if kind == "obj":
            if window_started:
                raise TraceSemanticError(
                    f"{reader.path}: preamble object {record.obj} declared "
                    "after window events began"
                )
            if record.obj in object_sizes:
                raise TraceSemanticError(
                    f"{reader.path}: duplicate object id {record.obj}"
                )
            object_sizes[record.obj] = record.size
            preamble.append((record.obj, record.size))
            allocations += 1
            live += 1
            peak_live = max(peak_live, live)
            continue
        window_started = True
        if kind == "alloc":
            if record.obj in object_sizes:
                raise TraceSemanticError(
                    f"{reader.path}: duplicate object id {record.obj}"
                )
            object_sizes[record.obj] = record.size
            allocations += 1
            live += 1
            peak_live = max(peak_live, live)
        elif kind == "free":
            if record.obj not in object_sizes:
                raise TraceSemanticError(
                    f"{reader.path}: free of unknown object {record.obj}"
                )
            if record.obj in freed:
                raise TraceSemanticError(
                    f"{reader.path}: double free of object {record.obj}"
                )
            freed.add(record.obj)
            deallocations += 1
            live -= 1
        elif kind in ("load", "store"):
            if record.obj not in object_sizes:
                raise TraceSemanticError(
                    f"{reader.path}: {kind} of undeclared object {record.obj}"
                )
            # Accesses to freed objects and offsets beyond the object size
            # are deliberately admitted: UAF/OOB attack traces express the
            # violation; detection is the simulated mechanism's job.
        event = record_to_event(record)
        if event is not None:
            events.append(event)

    if header.profile is not None:
        profile = profile_from_payload(header.profile)
        if profile.name != header.name:
            raise TraceSemanticError(
                f"{reader.path}: header name {header.name!r} does not match "
                f"embedded profile name {profile.name!r}"
            )
    else:
        profile = synthesize_profile(
            header.name, allocations, deallocations, peak_live
        )

    return WorkloadTrace(
        profile=profile,
        preamble=preamble,
        events=events,
        object_sizes=object_sizes,
        scale=header.scale,
        seed=header.seed,
        branch_mispredict_rate=header.mispredict_rate,
    )


def import_trace(
    path: Union[str, Path], format: Optional[str] = None
) -> WorkloadTrace:
    """Ingest a trace file (either wire format) into a WorkloadTrace."""
    with open_trace(path, format=format) as reader:
        return trace_from_reader(reader)


def read_header(path: Union[str, Path]) -> TraceHeader:
    """Decode just the header of a trace file (cheap; no record pass)."""
    reader = open_trace(path)
    try:
        return reader.header
    finally:
        reader.close()


def compile_trace(
    path: Union[str, Path],
    mechanism: str = "aos",
    config=None,
    format: Optional[str] = None,
):
    """Ingest ``path`` and lower it to a runnable program for ``mechanism``.

    Returns the :class:`~repro.compiler.passes.LoweredWorkload` (its
    ``.program`` is the :class:`~repro.isa.program.Program`); feed it to
    :class:`~repro.cpu.core.Simulator` with either kernel.  ``config``
    defaults to the Table IV configuration scale-matched to the *trace's*
    declared scale, mirroring how synthetic cells are configured.
    """
    from ..compiler import lower_trace
    from ..experiments.common import scaled_config

    trace = import_trace(path, format=format)
    if config is None:
        config = scaled_config(mechanism, trace.scale)
    return lower_trace(trace, mechanism, config=config)

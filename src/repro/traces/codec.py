"""Wire formats for the trace schema: streaming JSONL and binary codecs.

Both formats carry the identical logical stream — one
:class:`~repro.traces.schema.TraceHeader` then N
:class:`~repro.traces.schema.TraceRecord` rows then an end-of-trace
marker carrying N — and both are decoded *incrementally*: the reader
holds one line/frame at a time, never the whole file, so multi-GB traces
ingest in bounded memory.

**JSONL** (``.jsonl``): line 1 is the header object, every following line
one record object (``{"k": "<kind>", ...}``), last line
``{"k": "end", "records": N}``.  Canonical encoding (sorted keys, no
spaces) makes re-encoding a decoded stream byte-identical — the golden
fixture tests pin this.

**Binary** (``.bin``): an 8-byte magic + little-endian ``u16`` framing
version, a ``u32``-length-prefixed header (the same JSON object as the
JSONL header line), then ``u32``-length-prefixed frames whose first byte
is the record kind code, and a final end frame carrying the ``u64``
record count.  The trailing count converts any truncation — even one at
a clean frame boundary — into a loud
:class:`~repro.errors.TraceDecodeError`.

Every malformed input maps to :class:`~repro.errors.TraceFormatError`
(or a subclass); decoders never guess, skip, or silently stop early.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, Iterator, Optional, Union

from ..errors import TraceDecodeError, TraceFormatError
from .schema import (
    CODE_KINDS,
    END_CODE,
    END_KIND,
    KIND_CODES,
    TraceHeader,
    TraceRecord,
    validate_record,
)

#: Binary container magic and framing version (independent of the JSON
#: header's ``schema_version``, which it also carries and must agree with).
BINARY_MAGIC = b"RPTRACE0"
BINARY_VERSION = 1

#: Upper bound on a single frame/line, so a corrupted length prefix (or a
#: pathological line) cannot ask the decoder to buffer gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

FORMATS = ("jsonl", "binary")

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_OBJ = struct.Struct("<QQ")      # obj, alloc: (id, size)
_FREE = struct.Struct("<Q")      # free: (id,)
_LOAD = struct.Struct("<QQBB")   # load: (id, offset, ptr, chase)
_STORE = struct.Struct("<QQB")   # store: (id, offset, ptr)
_SPACE = struct.Struct("<BQ")    # uload/ustore: (space, offset)
_FLAG = struct.Struct("<B")      # branch: (mispredict,)

#: JSONL field sets per kind: (required, optional-with-default).
_JSON_FIELDS: Dict[str, tuple] = {
    "obj": (("obj", "size"), ()),
    "alloc": (("obj", "size"), ()),
    "free": (("obj",), ()),
    "load": (("obj", "offset"), ("ptr", "chase")),
    "store": (("obj", "offset"), ("ptr",)),
    "uload": (("space", "offset"), ()),
    "ustore": (("space", "offset"), ()),
    "call": ((), ()),
    "ret": ((), ()),
    "branch": ((), ("mispredict",)),
    "ptr": ((), ()),
    "alu": ((), ()),
    "falu": ((), ()),
    "note": (("text",), ()),
}


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------- encoding


def encode_record_json(record: TraceRecord) -> str:
    """The canonical JSONL line for one (validated) record."""
    validate_record(record)
    payload: dict = {"k": record.kind}
    required, optional = _JSON_FIELDS[record.kind]
    for name in required:
        payload[name] = getattr(record, name)
    for name in optional:
        payload[name] = getattr(record, name)
    return _canonical(payload)


def decode_record_json(payload: object) -> TraceRecord:
    """Strictly decode one JSONL record object."""
    if not isinstance(payload, dict):
        raise TraceDecodeError("trace record line must be a JSON object")
    kind = payload.get("k")
    if kind not in _JSON_FIELDS:
        raise TraceDecodeError(f"unknown record kind {kind!r}")
    required, optional = _JSON_FIELDS[kind]
    allowed = {"k", *required, *optional}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise TraceDecodeError(f"{kind}: unknown record fields {unknown}")
    kwargs: dict = {"kind": kind}
    for name in required:
        if name not in payload:
            raise TraceDecodeError(f"{kind}: missing required field {name!r}")
        kwargs[name] = payload[name]
    for name in optional:
        value = payload.get(name, False)
        if not isinstance(value, bool):
            raise TraceDecodeError(f"{kind}: field {name!r} must be a boolean")
        kwargs[name] = value
    try:
        record = TraceRecord(**kwargs)
    except TypeError as exc:  # e.g. text=non-str slipped past
        raise TraceDecodeError(f"{kind}: malformed record ({exc})") from exc
    return validate_record(record)


def _check_u64(kind: str, name: str, value: int) -> int:
    if value >= 1 << 64:
        raise TraceDecodeError(
            f"{kind}: field {name!r} does not fit the binary u64 encoding"
        )
    return value


def encode_record_binary(record: TraceRecord) -> bytes:
    """The binary frame *payload* (kind byte + fields; no length prefix)."""
    validate_record(record)
    kind = record.kind
    code = bytes((KIND_CODES[kind],))
    if kind in ("obj", "alloc"):
        return code + _OBJ.pack(
            _check_u64(kind, "obj", record.obj),
            _check_u64(kind, "size", record.size),
        )
    if kind == "free":
        return code + _FREE.pack(_check_u64(kind, "obj", record.obj))
    if kind == "load":
        return code + _LOAD.pack(
            _check_u64(kind, "obj", record.obj),
            _check_u64(kind, "offset", record.offset),
            int(record.ptr), int(record.chase),
        )
    if kind == "store":
        return code + _STORE.pack(
            _check_u64(kind, "obj", record.obj),
            _check_u64(kind, "offset", record.offset),
            int(record.ptr),
        )
    if kind in ("uload", "ustore"):
        return code + _SPACE.pack(
            record.space, _check_u64(kind, "offset", record.offset)
        )
    if kind == "branch":
        return code + _FLAG.pack(int(record.mispredict))
    if kind == "note":
        return code + record.text.encode("utf-8")
    return code  # call / ret / ptr / alu / falu: the kind byte alone


def _unpack(kind: str, fmt: struct.Struct, body: bytes) -> tuple:
    if len(body) != fmt.size:
        raise TraceDecodeError(
            f"{kind}: frame payload is {len(body)} bytes, expected {fmt.size}"
        )
    return fmt.unpack(body)


def _flag(kind: str, name: str, value: int) -> bool:
    if value not in (0, 1):
        raise TraceDecodeError(f"{kind}: flag {name!r} must be 0 or 1")
    return bool(value)


def decode_record_binary(payload: bytes) -> TraceRecord:
    """Decode one binary frame payload into a validated record."""
    if not payload:
        raise TraceDecodeError("empty record frame")
    code, body = payload[0], payload[1:]
    kind = CODE_KINDS.get(code)
    if kind is None:
        raise TraceDecodeError(f"unknown record kind code 0x{code:02x}")
    if kind in ("obj", "alloc"):
        obj, size = _unpack(kind, _OBJ, body)
        record = TraceRecord(kind=kind, obj=obj, size=size)
    elif kind == "free":
        (obj,) = _unpack(kind, _FREE, body)
        record = TraceRecord(kind="free", obj=obj)
    elif kind == "load":
        obj, offset, ptr, chase = _unpack(kind, _LOAD, body)
        record = TraceRecord(
            kind="load", obj=obj, offset=offset,
            ptr=_flag(kind, "ptr", ptr), chase=_flag(kind, "chase", chase),
        )
    elif kind == "store":
        obj, offset, ptr = _unpack(kind, _STORE, body)
        record = TraceRecord(
            kind="store", obj=obj, offset=offset, ptr=_flag(kind, "ptr", ptr)
        )
    elif kind in ("uload", "ustore"):
        space, offset = _unpack(kind, _SPACE, body)
        record = TraceRecord(kind=kind, space=space, offset=offset)
    elif kind == "branch":
        (bit,) = _unpack(kind, _FLAG, body)
        record = TraceRecord(kind="branch", mispredict=_flag(kind, "mispredict", bit))
    elif kind == "note":
        try:
            record = TraceRecord(kind="note", text=body.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise TraceDecodeError(f"note: payload is not UTF-8 ({exc})") from exc
    else:
        if body:
            raise TraceDecodeError(f"{kind}: unexpected {len(body)}-byte payload")
        record = TraceRecord(kind=kind)
    return validate_record(record)


# ----------------------------------------------------------------- writing


class TraceWriter:
    """Streaming trace writer for either wire format (context manager).

    Records are encoded and flushed to disk as they arrive — the writer
    never buffers the stream — so a recorder can export traces far larger
    than memory.  ``close()`` appends the end-of-trace marker with the
    record count; a writer abandoned without ``close()`` leaves a file
    that decoders *reject* (missing end record), never one they half-read.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: TraceHeader,
        format: str = "jsonl",
    ) -> None:
        if format not in FORMATS:
            raise TraceFormatError(
                f"unknown trace format {format!r}; known: {', '.join(FORMATS)}"
            )
        self.path = Path(path)
        self.format = format
        self.header = header
        self.records = 0
        self._closed = False
        if format == "jsonl":
            self._fh: IO = open(self.path, "w", encoding="utf-8", newline="\n")
            self._fh.write(_canonical(header.to_payload()) + "\n")
        else:
            self._fh = open(self.path, "wb")
            self._fh.write(BINARY_MAGIC + _U16.pack(BINARY_VERSION))
            header_bytes = _canonical(header.to_payload()).encode("utf-8")
            self._fh.write(_U32.pack(len(header_bytes)) + header_bytes)

    def write(self, record: TraceRecord) -> None:
        if self._closed:
            raise TraceFormatError("trace writer is closed")
        if self.format == "jsonl":
            self._fh.write(encode_record_json(record) + "\n")
        else:
            payload = encode_record_binary(record)
            self._fh.write(_U32.pack(len(payload)) + payload)
        self.records += 1

    def close(self) -> None:
        if self._closed:
            return
        if self.format == "jsonl":
            self._fh.write(
                _canonical({"k": END_KIND, "records": self.records}) + "\n"
            )
        else:
            payload = bytes((END_CODE,)) + _U64.pack(self.records)
            self._fh.write(_U32.pack(len(payload)) + payload)
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On error, leave the file end-less (decoders reject it) but closed.
        if exc_type is not None:
            self._fh.close()
            self._closed = True
        else:
            self.close()


# ----------------------------------------------------------------- reading


def detect_format(path: Union[str, Path]) -> str:
    """Sniff a trace file's wire format from its first bytes."""
    with open(path, "rb") as fh:
        head = fh.read(len(BINARY_MAGIC))
    if head == BINARY_MAGIC:
        return "binary"
    if head[:1] == b"{":
        return "jsonl"
    raise TraceDecodeError(
        f"{path}: not a trace file (neither binary magic nor a JSONL header)"
    )


class TraceReader:
    """Streaming trace reader (context manager + iterator of records).

    The header is decoded eagerly at construction; records are yielded
    one at a time.  Exhausting the iterator *is* the validation: missing
    end markers, count mismatches, truncated frames/lines and trailing
    garbage all raise :class:`~repro.errors.TraceFormatError` from the
    iterator, so any loop that runs to completion has seen a well-formed
    file.
    """

    def __init__(self, path: Union[str, Path], format: Optional[str] = None):
        self.path = Path(path)
        self.format = format or detect_format(self.path)
        if self.format not in FORMATS:
            raise TraceFormatError(
                f"unknown trace format {self.format!r}; known: {', '.join(FORMATS)}"
            )
        if self.format == "jsonl":
            self._fh = open(self.path, "r", encoding="utf-8", newline="\n")
            try:
                self.header = self._read_jsonl_header()
            except Exception:
                self._fh.close()
                raise
        else:
            self._fh = open(self.path, "rb")
            try:
                self.header = self._read_binary_header()
            except Exception:
                self._fh.close()
                raise

    # ------------------------------------------------------------- headers

    def _readline(self) -> str:
        try:
            return self._fh.readline(MAX_FRAME_BYTES)
        except UnicodeDecodeError as exc:
            raise TraceDecodeError(
                f"{self.path}: trace line is not UTF-8 ({exc})"
            ) from exc

    def _read_jsonl_header(self) -> TraceHeader:
        line = self._readline()
        if not line:
            raise TraceDecodeError(f"{self.path}: empty trace file")
        return TraceHeader.from_payload(self._parse_line(line, what="header"))

    def _read_binary_header(self) -> TraceHeader:
        magic = self._fh.read(len(BINARY_MAGIC))
        if magic != BINARY_MAGIC:
            raise TraceDecodeError(f"{self.path}: bad binary trace magic")
        version_bytes = self._fh.read(_U16.size)
        if len(version_bytes) != _U16.size:
            raise TraceDecodeError(f"{self.path}: truncated framing version")
        (version,) = _U16.unpack(version_bytes)
        if version != BINARY_VERSION:
            from ..errors import TraceVersionError

            raise TraceVersionError(
                f"{self.path}: binary framing version {version} is not "
                f"supported (this decoder speaks version {BINARY_VERSION})"
            )
        length_bytes = self._fh.read(_U32.size)
        if len(length_bytes) != _U32.size:
            raise TraceDecodeError(f"{self.path}: truncated header length")
        (length,) = _U32.unpack(length_bytes)
        if length == 0 or length > MAX_FRAME_BYTES:
            raise TraceDecodeError(f"{self.path}: implausible header length {length}")
        header_bytes = self._fh.read(length)
        if len(header_bytes) != length:
            raise TraceDecodeError(f"{self.path}: truncated header")
        try:
            payload = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceDecodeError(f"{self.path}: undecodable header ({exc})") from exc
        return TraceHeader.from_payload(payload)

    # ------------------------------------------------------------- records

    def _parse_line(self, line: str, what: str = "record") -> dict:
        text = line.rstrip("\n")
        if line and not line.endswith("\n"):
            # A final line without its newline is the signature of a file
            # cut mid-write; even if the JSON happens to parse, reject it.
            raise TraceDecodeError(f"{self.path}: truncated {what} line")
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceDecodeError(
                f"{self.path}: undecodable {what} line ({exc})"
            ) from exc
        if not isinstance(payload, dict):
            raise TraceDecodeError(f"{self.path}: {what} line must be a JSON object")
        return payload

    def _iter_jsonl(self) -> Iterator[TraceRecord]:
        count = 0
        while True:
            line = self._readline()
            if not line:
                raise TraceDecodeError(
                    f"{self.path}: truncated trace (missing end record)"
                )
            payload = self._parse_line(line)
            if payload.get("k") == END_KIND:
                declared = payload.get("records")
                if declared != count:
                    raise TraceDecodeError(
                        f"{self.path}: end record declares {declared} records "
                        f"but {count} were read"
                    )
                try:
                    trailing = self._fh.read(1)
                except UnicodeDecodeError:
                    trailing = "�"
                if trailing:
                    raise TraceDecodeError(
                        f"{self.path}: trailing garbage after end record"
                    )
                return
            yield decode_record_json(payload)
            count += 1

    def _iter_binary(self) -> Iterator[TraceRecord]:
        count = 0
        while True:
            length_bytes = self._fh.read(_U32.size)
            if not length_bytes:
                raise TraceDecodeError(
                    f"{self.path}: truncated trace (missing end frame)"
                )
            if len(length_bytes) != _U32.size:
                raise TraceDecodeError(f"{self.path}: truncated frame length")
            (length,) = _U32.unpack(length_bytes)
            if length == 0 or length > MAX_FRAME_BYTES:
                raise TraceDecodeError(
                    f"{self.path}: implausible frame length {length}"
                )
            payload = self._fh.read(length)
            if len(payload) != length:
                raise TraceDecodeError(f"{self.path}: truncated frame")
            if payload[0] == END_CODE:
                if len(payload) != 1 + _U64.size:
                    raise TraceDecodeError(f"{self.path}: malformed end frame")
                (declared,) = _U64.unpack(payload[1:])
                if declared != count:
                    raise TraceDecodeError(
                        f"{self.path}: end frame declares {declared} records "
                        f"but {count} were read"
                    )
                trailing = self._fh.read(1)
                if trailing:
                    raise TraceDecodeError(
                        f"{self.path}: trailing garbage after end frame"
                    )
                return
            yield decode_record_binary(payload)
            count += 1

    def __iter__(self) -> Iterator[TraceRecord]:
        if self.format == "jsonl":
            return self._iter_jsonl()
        return self._iter_binary()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_trace(path: Union[str, Path], format: Optional[str] = None) -> TraceReader:
    """Open a trace file for streaming decode (format auto-detected)."""
    return TraceReader(path, format=format)


# ------------------------------------------------------- digest and stats


def trace_digest(path: Union[str, Path], chunk_bytes: int = 1 << 20) -> str:
    """Streamed sha256 of the trace file's raw bytes.

    This is the content identity the artifact cache keys ingested cells
    on — any byte of the file changing (header, records, format) changes
    the digest, and the digest is computed in ``chunk_bytes`` pieces so
    hashing a multi-GB trace needs constant memory.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class TraceStats:
    """What one streaming pass over a trace file learned."""

    path: str
    format: str
    header: TraceHeader
    records: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    size_bytes: int = 0
    digest: str = ""

    def format_summary(self) -> str:
        parts = [
            f"{self.path}: {self.format} trace, schema v1, "
            f"{self.records} records, {self.size_bytes} bytes",
            f"  name={self.header.name} scale={self.header.scale} "
            f"seed={self.header.seed} "
            f"profile={'embedded' if self.header.profile else 'none'}",
            "  records: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items())),
            f"  sha256: {self.digest}",
        ]
        return "\n".join(parts)


def scan_trace(path: Union[str, Path]) -> TraceStats:
    """Validate + summarise a trace file in two streaming passes
    (decode, then digest); memory use is bounded by one record/chunk."""
    path = Path(path)
    with open_trace(path) as reader:
        stats = TraceStats(
            path=str(path), format=reader.format, header=reader.header
        )
        for record in reader:
            stats.records += 1
            stats.counts[record.kind] = stats.counts.get(record.kind, 0) + 1
    stats.size_bytes = path.stat().st_size
    stats.digest = trace_digest(path)
    return stats

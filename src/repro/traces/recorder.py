"""Trace recording: WorkloadTrace -> versioned trace file.

The recorder is the inverse of :mod:`repro.traces.importer`: it exports
any :class:`~repro.workloads.WorkloadTrace` — synthetic, scenario-
compiled, or previously ingested — through the versioned schema, with
the full workload profile embedded in the header so a re-import
reconstructs an *equal* trace (and therefore byte-identical simulation
results).  Records stream straight to disk via
:class:`~repro.traces.codec.TraceWriter`; nothing is buffered.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterator, Optional, Union

from ..workloads.generator import WorkloadTrace
from .codec import TraceWriter
from .schema import TraceHeader, TraceRecord, event_to_record


def trace_records(trace: WorkloadTrace) -> Iterator[TraceRecord]:
    """The schema record stream for ``trace``: preamble rows then events."""
    for obj, size in trace.preamble:
        yield TraceRecord(kind="obj", obj=obj, size=size)
    for event in trace.events:
        yield event_to_record(event)


def trace_header(
    trace: WorkloadTrace,
    generator: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> TraceHeader:
    """The header describing ``trace``, profile embedded."""
    return TraceHeader(
        name=trace.name,
        scale=trace.scale,
        seed=trace.seed,
        mispredict_rate=trace.branch_mispredict_rate,
        profile=dataclasses.asdict(trace.profile),
        generator=generator,
        meta=meta,
    )


def record_trace(
    trace: WorkloadTrace,
    path: Union[str, Path],
    format: str = "jsonl",
    generator: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> Path:
    """Export ``trace`` to ``path`` in the given wire format."""
    path = Path(path)
    with TraceWriter(
        path, trace_header(trace, generator=generator, meta=meta), format=format
    ) as writer:
        for record in trace_records(trace):
            writer.write(record)
    return path


def export_workload(
    workload: str,
    path: Union[str, Path],
    format: str = "jsonl",
    instructions: int = 40_000,
    seed: int = 7,
    scale: int = 8,
) -> WorkloadTrace:
    """Generate one synthetic workload window and export it.

    The header's ``generator`` block records the provenance
    (workload/instructions/seed/scale), which is what lets
    ``python -m repro trace-import --verify-roundtrip`` regenerate the
    synthetic source and byte-compare results against the ingested copy.
    """
    from ..workloads import generate_trace, get_profile

    trace = generate_trace(
        get_profile(workload), instructions=instructions, seed=seed, scale=scale
    )
    record_trace(
        trace,
        path,
        format=format,
        generator={
            "source": "synthetic",
            "workload": workload,
            "instructions": instructions,
            "seed": seed,
            "scale": scale,
        },
    )
    return trace

"""The versioned trace schema: record kinds, header, validation.

A *trace file* is a header followed by a stream of records and a
terminating end-of-trace marker.  Two wire formats carry the same logical
stream — line-delimited JSON (:mod:`repro.traces.codec` ``"jsonl"``) and a
length-prefixed binary framing (``"binary"``) — and both embed an explicit
``schema_version`` so decoders reject forward-incompatible files with
:class:`~repro.errors.TraceVersionError` instead of misreading them.

Record kinds (schema v1):

==========  ==========================================================
``obj``     A heap object live before the measured window starts
            (the generator's *preamble*); must precede all events.
``alloc``   Heap allocation of a fresh object id with a byte size.
``free``    Deallocation of a previously declared object.
``load``    Heap load at (object, offset); flags: pointer-typed value,
            address depends on the previous load (pointer chasing).
``store``   Heap store at (object, offset); flag: pointer-typed value.
``uload``   Non-heap (unsigned) load: space 0 = stack, 1 = globals.
``ustore``  Non-heap (unsigned) store, same spaces.
``call``    Function call (drives PA pacia/autia and return stacks).
``ret``     Function return.
``branch``  Conditional branch with its resolved *mispredicted* bit.
``ptr``     Pointer arithmetic (Watchdog WMETA / metadata targets).
``alu``     Integer ALU work.
``falu``    Floating-point ALU work.
``note``    Free-text annotation; carried by both formats, ignored by
            the importer when building the runnable program.
==========  ==========================================================

Offsets past the declared object size and accesses to freed objects are
*valid schema* — they are exactly how out-of-bounds and use-after-free
attack traces are expressed (the lowering executes them for real and the
mechanisms under test must catch them).  What the importer rejects as
:class:`~repro.errors.TraceSemanticError` is the impossible: duplicate
allocation ids, frees/accesses of ids never declared, double frees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import TraceDecodeError, TraceVersionError

#: The schema version this package reads and writes.
SCHEMA_VERSION = 1

#: The header's format discriminator (also a sanity check that a JSONL
#: file is a trace at all, not some other JSON-lines artifact).
FORMAT_NAME = "repro-trace"

#: Record kinds, in canonical order.  Binary kind codes are 1-based
#: positions in this tuple; ``end`` (the stream terminator) is codec
#: machinery, deliberately not a user-visible record kind.
RECORD_KINDS: Tuple[str, ...] = (
    "obj", "alloc", "free", "load", "store", "uload", "ustore",
    "call", "ret", "branch", "ptr", "alu", "falu", "note",
)

KIND_CODES: Dict[str, int] = {kind: i + 1 for i, kind in enumerate(RECORD_KINDS)}
CODE_KINDS: Dict[int, str] = {code: kind for kind, code in KIND_CODES.items()}

#: Binary code for the end-of-trace frame (never a TraceRecord kind).
END_CODE = 0x7F
#: JSONL kind string for the end-of-trace line.
END_KIND = "end"


@dataclass(frozen=True)
class TraceRecord:
    """One schema record.  Only the fields its kind uses are meaningful."""

    kind: str
    obj: Optional[int] = None
    size: Optional[int] = None
    offset: Optional[int] = None
    ptr: bool = False
    chase: bool = False
    space: Optional[int] = None
    mispredict: bool = False
    text: Optional[str] = None


#: kind -> (required int fields, flag fields) used by :func:`validate_record`.
_INT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "obj": ("obj", "size"),
    "alloc": ("obj", "size"),
    "free": ("obj",),
    "load": ("obj", "offset"),
    "store": ("obj", "offset"),
    "uload": ("space", "offset"),
    "ustore": ("space", "offset"),
    "call": (),
    "ret": (),
    "branch": (),
    "ptr": (),
    "alu": (),
    "falu": (),
    "note": (),
}


def validate_record(record: TraceRecord) -> TraceRecord:
    """Schema-validate one record; returns it, or raises TraceDecodeError."""
    kind = record.kind
    if kind not in KIND_CODES:
        raise TraceDecodeError(f"unknown record kind {kind!r}")
    for name in _INT_FIELDS[kind]:
        value = getattr(record, name)
        if not isinstance(value, int) or isinstance(value, bool):
            raise TraceDecodeError(f"{kind}: field {name!r} must be an integer")
        if value < 0:
            raise TraceDecodeError(f"{kind}: field {name!r} must be >= 0")
    if kind in ("obj", "alloc") and record.size == 0:
        raise TraceDecodeError(f"{kind}: object size must be positive")
    if kind in ("uload", "ustore") and record.space not in (0, 1):
        raise TraceDecodeError(f"{kind}: space must be 0 (stack) or 1 (globals)")
    if kind == "note" and not isinstance(record.text, str):
        raise TraceDecodeError("note: field 'text' must be a string")
    return record


@dataclass(frozen=True)
class TraceHeader:
    """The trace file's self-description (first line / first frame).

    ``profile`` optionally embeds the full synthetic
    :class:`~repro.workloads.WorkloadProfile` (as a JSON-able dict) so a
    recorded synthetic trace re-imports byte-identically; externally
    captured traces leave it ``None`` and the importer synthesises a
    neutral profile from the record stream.  ``generator`` carries
    optional provenance (e.g. the synthetic window length) used by
    round-trip verification; ``meta`` is free-form user metadata.  All
    three survive both wire formats unchanged.
    """

    name: str = "trace"
    scale: int = 1
    seed: int = 0
    mispredict_rate: float = 0.0
    profile: Optional[dict] = None
    generator: Optional[dict] = None
    meta: Optional[dict] = None

    def to_payload(self) -> dict:
        payload: dict = {
            "format": FORMAT_NAME,
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "scale": self.scale,
            "seed": self.seed,
            "mispredict_rate": self.mispredict_rate,
            "profile": self.profile,
        }
        if self.generator is not None:
            payload["generator"] = self.generator
        if self.meta is not None:
            payload["meta"] = self.meta
        return payload

    @classmethod
    def from_payload(cls, payload: object) -> "TraceHeader":
        if not isinstance(payload, dict):
            raise TraceDecodeError("trace header must be a JSON object")
        if payload.get("format") != FORMAT_NAME:
            raise TraceDecodeError(
                f"not a {FORMAT_NAME} file (format={payload.get('format')!r})"
            )
        version = payload.get("schema_version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise TraceDecodeError("trace header: schema_version must be an integer")
        if version != SCHEMA_VERSION:
            raise TraceVersionError(
                f"trace schema version {version} is not supported "
                f"(this decoder speaks version {SCHEMA_VERSION}); "
                "forward-incompatible files are rejected, not guessed at"
            )
        known = {
            "format", "schema_version", "name", "scale", "seed",
            "mispredict_rate", "profile", "generator", "meta",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise TraceDecodeError(f"trace header: unknown fields {unknown}")
        name = payload.get("name", "trace")
        if not isinstance(name, str) or not name:
            raise TraceDecodeError("trace header: name must be a non-empty string")
        scale = payload.get("scale", 1)
        if not isinstance(scale, int) or isinstance(scale, bool) or scale < 1 \
                or scale & (scale - 1):
            raise TraceDecodeError("trace header: scale must be a power of two >= 1")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TraceDecodeError("trace header: seed must be an integer")
        rate = payload.get("mispredict_rate", 0.0)
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            raise TraceDecodeError("trace header: mispredict_rate must be a number")
        for field in ("profile", "generator", "meta"):
            value = payload.get(field)
            if value is not None and not isinstance(value, dict):
                raise TraceDecodeError(f"trace header: {field} must be an object")
        return cls(
            name=name,
            scale=scale,
            seed=seed,
            mispredict_rate=float(rate),
            profile=payload.get("profile"),
            generator=payload.get("generator"),
            meta=payload.get("meta"),
        )


# ------------------------------------------------------ event <-> record

#: The generator's event-tuple tags, mapped 1:1 onto record kinds.
_EVENT_TO_KIND = {
    "m": "alloc", "f": "free", "ld": "load", "st": "store",
    "uld": "uload", "ust": "ustore", "call": "call", "ret": "ret",
    "br": "branch", "pa": "ptr", "alu": "alu", "falu": "falu",
}


def event_to_record(event: tuple) -> TraceRecord:
    """Map one generator event tuple to its schema record."""
    tag = event[0]
    kind = _EVENT_TO_KIND.get(tag)
    if kind is None:
        raise TraceDecodeError(f"unrecordable event tag {tag!r}")
    if kind == "alloc":
        return TraceRecord(kind="alloc", obj=event[1], size=event[2])
    if kind == "free":
        return TraceRecord(kind="free", obj=event[1])
    if kind == "load":
        return TraceRecord(
            kind="load", obj=event[1], offset=event[2],
            ptr=bool(event[3]), chase=bool(event[4]),
        )
    if kind == "store":
        return TraceRecord(
            kind="store", obj=event[1], offset=event[2], ptr=bool(event[3])
        )
    if kind in ("uload", "ustore"):
        return TraceRecord(kind=kind, space=event[1], offset=event[2])
    if kind == "branch":
        return TraceRecord(kind="branch", mispredict=bool(event[1]))
    return TraceRecord(kind=kind)


def record_to_event(record: TraceRecord) -> Optional[tuple]:
    """Map one record to its generator event tuple (None for non-events:
    ``obj`` rows are preamble state, ``note`` rows are annotations)."""
    kind = record.kind
    if kind in ("obj", "note"):
        return None
    if kind == "alloc":
        return ("m", record.obj, record.size)
    if kind == "free":
        return ("f", record.obj)
    if kind == "load":
        return ("ld", record.obj, record.offset, record.ptr, record.chase)
    if kind == "store":
        return ("st", record.obj, record.offset, record.ptr)
    if kind == "uload":
        return ("uld", record.space, record.offset)
    if kind == "ustore":
        return ("ust", record.space, record.offset)
    if kind == "branch":
        return ("br", record.mispredict)
    if kind == "call":
        return ("call",)
    if kind == "ret":
        return ("ret",)
    if kind == "ptr":
        return ("pa",)
    if kind == "alu":
        return ("alu",)
    if kind == "falu":
        return ("falu",)
    raise TraceDecodeError(f"unknown record kind {kind!r}")

"""Pluggable trace frontend: versioned trace files <-> runnable programs.

The simulator's workloads no longer have to come from the 22 calibrated
synthetic profiles: this package defines a versioned trace schema
(:mod:`~repro.traces.schema`), streaming JSONL/binary codecs
(:mod:`~repro.traces.codec`), an importer that compiles a record stream
into the same :class:`~repro.workloads.WorkloadTrace` -> ``Program``
pipeline the generator feeds (:mod:`~repro.traces.importer`), and a
recorder that exports any trace back out through the same schema
(:mod:`~repro.traces.recorder`).

The round-trip invariant — ``simulate(generate(p)) ==
simulate(import(record(generate(p))))`` byte-identically, for every
profile and both kernels — is the package's contract, enforced by
``tests/test_traces_roundtrip.py`` and the CI ``trace-ingest-smoke`` job.

CLI faces: ``python -m repro trace-export <workload>`` and
``python -m repro trace-import <file>``, plus ``--trace <file>`` on the
timing subcommands.  Ingested cells are cached by a streamed sha256
digest of the trace file (:func:`trace_digest`), not by profile
fingerprints.
"""

from .codec import (
    FORMATS,
    TraceReader,
    TraceStats,
    TraceWriter,
    detect_format,
    open_trace,
    scan_trace,
    trace_digest,
)
from .importer import (
    compile_trace,
    import_trace,
    profile_from_payload,
    read_header,
    synthesize_profile,
    trace_from_reader,
)
from .recorder import (
    export_workload,
    record_trace,
    trace_header,
    trace_records,
)
from .schema import (
    RECORD_KINDS,
    SCHEMA_VERSION,
    TraceHeader,
    TraceRecord,
    event_to_record,
    record_to_event,
    validate_record,
)

__all__ = [
    "FORMATS",
    "RECORD_KINDS",
    "SCHEMA_VERSION",
    "TraceHeader",
    "TraceReader",
    "TraceRecord",
    "TraceStats",
    "TraceWriter",
    "compile_trace",
    "detect_format",
    "event_to_record",
    "export_workload",
    "import_trace",
    "open_trace",
    "profile_from_payload",
    "read_header",
    "record_to_event",
    "record_trace",
    "scan_trace",
    "synthesize_profile",
    "trace_digest",
    "trace_from_reader",
    "trace_header",
    "trace_records",
    "validate_record",
]

"""Small presentation utilities shared by the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean — the paper's summary statistic for Figs. 14/18."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every entry by the baseline entry."""
    base = values[baseline_key]
    if base == 0:
        raise ValueError(f"baseline {baseline_key!r} is zero")
    return {k: v / base for k, v in values.items()}


class TableFormatter:
    """Fixed-width text tables for experiment reports."""

    def __init__(self, columns: Sequence[str], col_width: int = 12, name_width: int = 14):
        self.columns = list(columns)
        self.col_width = col_width
        self.name_width = name_width
        self._rows: List[str] = []

    def _width(self, column: str) -> int:
        # A column never narrower than its own header (plus one space of
        # separation), so long outcome names don't fuse with the neighbour.
        return max(self.col_width, len(column) + 1)

    def header(self) -> str:
        head = f"{'':{self.name_width}s}" + "".join(
            f"{c:>{self._width(c)}s}" for c in self.columns
        )
        return head + "\n" + "-" * len(head)

    def add_row(self, name: str, values: Dict[str, object], fmt: str = "{:.3f}") -> None:
        cells = []
        for column in self.columns:
            value = values.get(column)
            width = self._width(column)
            if value is None:
                cells.append(f"{'-':>{width}s}")
            elif isinstance(value, float):
                cells.append(f"{fmt.format(value):>{width}s}")
            else:
                cells.append(f"{str(value):>{width}s}")
        self._rows.append(f"{name:{self.name_width}s}" + "".join(cells))

    def render(self) -> str:
        return "\n".join([self.header()] + self._rows)

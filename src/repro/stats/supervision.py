"""Failure-taxonomy roll-up for supervised runs.

Collapses a :class:`~repro.supervise.supervisor.SupervisionReport` (or its
``to_payload()`` dict) into the four-way taxonomy the docs promise —
*clean / retried / degraded / quarantined* — plus a level × outcome
attempt table.  Kept in :mod:`repro.stats` (not :mod:`repro.supervise`)
because it is pure presentation over plain dicts: anything that records
attempts with ``(key, attempt, level, outcome)`` can use it.

Taxonomy, in priority order (one class per task):

``quarantined``
    every attempt failed; the task was recorded as a poison cell.
``skipped``
    a previous run already quarantined the task; this run never tried it.
``degraded``
    the task completed, but only after the supervisor fell down the
    execution ladder (its successful attempt ran at a lower level than
    its first attempt).
``retried``
    the task completed on a second or later attempt at the same level.
``clean``
    first attempt, first level, done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from .report import TableFormatter

#: Presentation order of the taxonomy classes.
TAXONOMY: Sequence[str] = ("clean", "retried", "degraded", "quarantined", "skipped")

#: Presentation order of per-attempt outcomes.
ATTEMPT_OUTCOMES: Sequence[str] = ("ok", "error", "hang", "crash")


def _payload(report: Any) -> Dict[str, Any]:
    if hasattr(report, "to_payload"):
        return report.to_payload()
    return dict(report)


@dataclass
class SupervisionSummary:
    """``task -> taxonomy class`` with attempt-level breakdowns."""

    per_task: Dict[str, str] = field(default_factory=dict)
    #: ``level -> outcome -> attempt count`` (every attempt, not just final).
    by_level: Dict[str, Dict[str, int]] = field(default_factory=dict)
    fallbacks: List[str] = field(default_factory=list)
    backoff_s: float = 0.0
    final_level: str = ""

    @classmethod
    def from_report(cls, report: Any) -> "SupervisionSummary":
        data = _payload(report)
        summary = cls(
            fallbacks=list(data.get("fallbacks", ())),
            backoff_s=float(data.get("backoff_s", 0.0)),
            final_level=str(data.get("final_level", "")),
        )
        first_level: Dict[str, str] = {}
        ok_attempt: Dict[str, Dict[str, Any]] = {}
        for attempt in data.get("attempts", ()):
            key = attempt["key"]
            level = attempt["level"]
            outcome = attempt["outcome"]
            first_level.setdefault(key, level)
            per_level = summary.by_level.setdefault(
                level, {o: 0 for o in ATTEMPT_OUTCOMES}
            )
            per_level[outcome] = per_level.get(outcome, 0) + 1
            if outcome == "ok":
                ok_attempt[key] = attempt
        for key, attempt in ok_attempt.items():
            if attempt["level"] != first_level[key]:
                summary.per_task[key] = "degraded"
            elif attempt["attempt"] > 1:
                summary.per_task[key] = "retried"
            else:
                summary.per_task[key] = "clean"
        for key in data.get("quarantined", {}):
            summary.per_task[key] = "quarantined"
        for key in data.get("skipped_quarantined", ()):
            summary.per_task[key] = "skipped"
        return summary

    def counts(self) -> Dict[str, int]:
        """Taxonomy class -> number of tasks, in presentation order."""
        counts = {name: 0 for name in TAXONOMY}
        for klass in self.per_task.values():
            counts[klass] = counts.get(klass, 0) + 1
        return counts

    def tasks_in(self, klass: str) -> List[str]:
        return sorted(k for k, v in self.per_task.items() if v == klass)

    def format_table(self) -> str:
        """Level × attempt-outcome table (every attempt counted once)."""
        table = TableFormatter(columns=list(ATTEMPT_OUTCOMES), col_width=8)
        for level, per_level in self.by_level.items():
            table.add_row(level, dict(per_level))
        return table.render()

    def format(self) -> str:
        counts = self.counts()
        lines = [
            "Failure taxonomy: "
            + "  ".join(f"{name}: {counts[name]}" for name in TAXONOMY),
            self.format_table(),
        ]
        if self.fallbacks:
            lines.append("degradations: " + "; ".join(self.fallbacks))
        lines.append(
            f"backoff slept: {self.backoff_s:.2f}s  final level: {self.final_level}"
        )
        return "\n".join(lines)

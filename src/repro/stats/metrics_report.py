"""Render metric snapshots as report tables.

A :class:`MetricsReport` formats one snapshot (a single cell's, or a
suite-level merge from
:meth:`~repro.experiments.common.ExperimentSuite.metrics_snapshot`) into
the same fixed-width text style as the figure tables, grouped by metric
namespace (``mcu.*``, ``hbt.*``, ``cache.*``, ...).  Histograms render as
one row per bucket edge so way-walk distributions are readable without
external tooling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def _split(name: str) -> Tuple[str, str]:
    """``mcu.lines_accessed`` -> (``mcu``, ``lines_accessed``)."""
    head, _, tail = name.partition(".")
    return (head, tail) if tail else ("misc", head)


def _format_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}"
    return f"{int(value):,}"


class MetricsReport:
    """Human-readable view of one metrics snapshot."""

    def __init__(self, snapshot: dict, title: str = "metrics") -> None:
        self.snapshot = snapshot or {}
        self.title = title

    # ------------------------------------------------------------ sections

    def _grouped(self, kind: str) -> Dict[str, List[Tuple[str, object]]]:
        groups: Dict[str, List[Tuple[str, object]]] = {}
        for name, value in self.snapshot.get(kind, {}).items():
            group, leaf = _split(name)
            groups.setdefault(group, []).append((leaf, value))
        return groups

    def format(self) -> str:
        lines = [self.title, "=" * len(self.title)]
        counters = self._grouped("counters")
        gauges = self._grouped("gauges")
        if not counters and not gauges and not self.snapshot.get("histograms"):
            lines.append("(no metrics collected — run with observability on)")
            return "\n".join(lines)
        for group in sorted(set(counters) | set(gauges)):
            lines.append(f"\n[{group}]")
            for leaf, value in counters.get(group, []):
                lines.append(f"  {leaf:<28s} {_format_value(value):>16s}")
            for leaf, value in gauges.get(group, []):
                lines.append(f"  {leaf:<28s} {_format_value(value):>16s}  (gauge)")
        for name, hist in self.snapshot.get("histograms", {}).items():
            lines.append(f"\n[histogram] {name}")
            count = hist.get("count", 0)
            lines.append(
                f"  observations {count:,}  mean "
                f"{(hist.get('total', 0.0) / count if count else 0.0):.3f}"
            )
            bounds = list(hist.get("bounds", []))
            counts = list(hist.get("counts", []))
            edges = [f"<= {b:g}" for b in bounds] + [f"> {bounds[-1]:g}" if bounds else "all"]
            for edge, bucket in zip(edges, counts):
                bar = "#" * min(40, round(40 * bucket / count)) if count else ""
                lines.append(f"  {edge:>10s} {bucket:>12,d}  {bar}")
        return "\n".join(lines)


def format_cell_metrics(
    cell_metrics: Dict[Tuple[str, str], dict],
    counter: str,
    limit: Optional[int] = None,
) -> str:
    """A compact per-cell table of one counter across a sweep's cells."""
    rows = []
    for (workload, key), snapshot in sorted(cell_metrics.items()):
        value = snapshot.get("counters", {}).get(counter)
        if value is None:
            value = snapshot.get("gauges", {}).get(counter)
        if value is not None:
            rows.append((f"{workload}/{key}", value))
    if limit is not None:
        rows = rows[:limit]
    if not rows:
        return f"(no cells carry metric {counter!r})"
    width = max(len(name) for name, _ in rows)
    return "\n".join(
        f"{name:<{width}s}  {_format_value(value):>16s}" for name, value in rows
    )

"""Reporting helpers: tables, geomeans, coverage, supervision taxonomy."""

from .coverage import DetectionCoverage
from .metrics_report import MetricsReport, format_cell_metrics
from .report import TableFormatter, geomean, normalize
from .scenario_coverage import ScenarioCoverage
from .supervision import SupervisionSummary

__all__ = [
    "DetectionCoverage",
    "MetricsReport",
    "ScenarioCoverage",
    "SupervisionSummary",
    "TableFormatter",
    "format_cell_metrics",
    "geomean",
    "normalize",
]

"""Reporting helpers: tables, geometric means, normalisation."""

from .report import TableFormatter, geomean, normalize

__all__ = ["TableFormatter", "geomean", "normalize"]

"""Reporting helpers: tables, geomeans, coverage, supervision taxonomy."""

from .coverage import DetectionCoverage
from .report import TableFormatter, geomean, normalize
from .supervision import SupervisionSummary

__all__ = [
    "DetectionCoverage",
    "SupervisionSummary",
    "TableFormatter",
    "geomean",
    "normalize",
]

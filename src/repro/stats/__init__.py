"""Reporting helpers: tables, geometric means, normalisation, coverage."""

from .coverage import DetectionCoverage
from .report import TableFormatter, geomean, normalize

__all__ = ["DetectionCoverage", "TableFormatter", "geomean", "normalize"]

"""Detection-coverage aggregation for fault-injection campaigns.

Rolls per-run outcomes into a fault-kind × outcome table plus detection
rates, the shape sanitizer evaluations report and the form in which our
numbers line up against the paper's §VII attack table.  Kept in
:mod:`repro.stats` (not :mod:`repro.faults`) because it is pure
presentation over plain strings — any sweep that labels runs with a kind
and an outcome can use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .report import TableFormatter

#: The canonical campaign taxonomy, in presentation order.
DEFAULT_OUTCOMES: Sequence[str] = ("detected", "silent", "crashed", "timed-out")


@dataclass
class DetectionCoverage:
    """``kind -> outcome -> count`` with detection-rate roll-ups."""

    outcomes: Sequence[str] = DEFAULT_OUTCOMES
    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def add(self, kind: str, outcome: str) -> None:
        per_kind = self.counts.setdefault(kind, {o: 0 for o in self.outcomes})
        if outcome not in per_kind:
            per_kind[outcome] = 0
        per_kind[outcome] += 1

    def kinds(self) -> List[str]:
        return list(self.counts)

    def total(self, kind: Optional[str] = None) -> int:
        if kind is not None:
            return sum(self.counts.get(kind, {}).values())
        return sum(sum(per.values()) for per in self.counts.values())

    def detected(self, kind: Optional[str] = None) -> int:
        if kind is not None:
            return self.counts.get(kind, {}).get("detected", 0)
        return sum(per.get("detected", 0) for per in self.counts.values())

    def rate(self, kinds: Optional[Iterable[str]] = None) -> float:
        """Detected fraction over ``kinds`` (default: every kind).

        Crashes and timeouts count against detection — a mechanism gets no
        credit for a run that never produced a verdict.
        """
        selected = list(kinds) if kinds is not None else self.kinds()
        total = sum(self.total(k) for k in selected)
        if total == 0:
            return 0.0
        return sum(self.detected(k) for k in selected) / total

    def format_table(self) -> str:
        table = TableFormatter(
            columns=list(self.outcomes) + ["rate"],
            col_width=11,
            name_width=22,
        )
        for kind in self.kinds():
            row: Dict[str, object] = dict(self.counts[kind])
            row["rate"] = f"{100.0 * self.rate([kind]):.0f}%"
            table.add_row(kind, row)
        summary: Dict[str, object] = {
            outcome: sum(per.get(outcome, 0) for per in self.counts.values())
            for outcome in self.outcomes
        }
        summary["rate"] = f"{100.0 * self.rate():.0f}%"
        table.add_row("TOTAL", summary)
        return table.render()

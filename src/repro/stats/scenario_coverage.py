"""Scenario-corpus coverage roll-ups and Pareto data.

Aggregates :class:`~repro.adversary.chaos.ScenarioRun` cells into
per-mechanism detection coverage — the security axis of the
coverage-vs-overhead Pareto figure — reusing
:class:`~repro.stats.coverage.DetectionCoverage` for the per-category
breakdown.  Like its sibling this is pure presentation over plain
strings, so it lives in :mod:`repro.stats` rather than
:mod:`repro.adversary`.

Denominator convention: *modeled* cells only.  A cell whose adapter does
not model the attacker primitive (``unsupported``/``unmodeled``) says
nothing about detection strength and is excluded; crashed or timed-out
cells stay in the denominator and count **against** detection — a
mechanism gets no credit for a run that never produced a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .coverage import DetectionCoverage
from .report import TableFormatter

#: Observed outcomes excluded from coverage denominators.
_UNMODELED = ("unsupported",)


@dataclass
class ScenarioCoverage:
    """Per-mechanism coverage over adversarial scenario runs."""

    #: Stable payload of every run (scenario, mechanism, category,
    #: expected, observed, verdict).
    records: List[dict] = field(default_factory=list)

    @classmethod
    def from_matrix(cls, matrix) -> "ScenarioCoverage":
        """Build from a :class:`~repro.adversary.chaos.ScenarioMatrix`."""
        coverage = cls()
        for run in matrix.runs:
            coverage.add_record(run.stable_payload())
        return coverage

    def add_record(self, record: dict) -> None:
        self.records.append(dict(record))

    # ------------------------------------------------------------ selection

    def mechanisms(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record["mechanism"] not in seen:
                seen.append(record["mechanism"])
        return seen

    def scenarios(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record["scenario"] not in seen:
                seen.append(record["scenario"])
        return seen

    def modeled(self, mechanism: str) -> List[dict]:
        """The coverage denominator for one mechanism."""
        return [
            r
            for r in self.records
            if r["mechanism"] == mechanism and r["observed"] not in _UNMODELED
        ]

    # ------------------------------------------------------------ roll-ups

    def detection_rate(self, mechanism: str) -> float:
        """Detected fraction of modeled cells (the Pareto security axis)."""
        modeled = self.modeled(mechanism)
        if not modeled:
            return 0.0
        hits = sum(1 for r in modeled if r["observed"] == "detected")
        return hits / len(modeled)

    def must_detect_rate(self, mechanism: str) -> float:
        """Detected fraction of the cells the oracle *requires*."""
        required = [
            r for r in self.modeled(mechanism) if r["expected"] == "must-detect"
        ]
        if not required:
            return 1.0
        hits = sum(1 for r in required if r["observed"] == "detected")
        return hits / len(required)

    def escapes(self, mechanism: str) -> List[str]:
        """Named confirmed escapes (never silent — always listed)."""
        return [
            r["scenario"]
            for r in self.records
            if r["mechanism"] == mechanism and r["verdict"] == "escape-confirmed"
        ]

    def by_category(self, mechanism: str) -> DetectionCoverage:
        """Per violation-category breakdown, reusing the campaign shape
        (scenario outcomes map onto the fault-campaign taxonomy:
        ``undetected`` cells are its ``silent`` column)."""
        coverage = DetectionCoverage()
        outcome_map = {"undetected": "silent"}
        for record in self.modeled(mechanism):
            observed = record["observed"]
            coverage.add(record["category"], outcome_map.get(observed, observed))
        return coverage

    # -------------------------------------------------------------- pareto

    def pareto_points(
        self, overheads: Mapping[str, float]
    ) -> List[dict]:
        """Join coverage with normalized-time overheads into Pareto points.

        ``overheads`` maps mechanism -> normalized execution time
        (baseline = 1.0, from the Fig. 14 machinery).  Mechanisms without
        an overhead number are skipped — silently dropping them from the
        figure would misread as zero cost, so callers log the omission.
        Returns one point per mechanism with ``frontier`` marking the
        non-dominated set (higher coverage, lower overhead)."""
        points = [
            {
                "mechanism": mechanism,
                "coverage": self.detection_rate(mechanism),
                "overhead": float(overheads[mechanism]),
            }
            for mechanism in self.mechanisms()
            if mechanism in overheads
        ]
        for point in points:
            point["frontier"] = not any(
                (
                    other["coverage"] >= point["coverage"]
                    and other["overhead"] <= point["overhead"]
                    and (
                        other["coverage"] > point["coverage"]
                        or other["overhead"] < point["overhead"]
                    )
                )
                for other in points
            )
        points.sort(key=lambda p: (p["overhead"], -p["coverage"]))
        return points

    # ---------------------------------------------------------- formatting

    def format_table(self) -> str:
        table = TableFormatter(
            columns=["modeled", "detected", "coverage", "must-detect", "escapes"],
            col_width=11,
            name_width=14,
        )
        for mechanism in self.mechanisms():
            modeled = self.modeled(mechanism)
            detected = sum(1 for r in modeled if r["observed"] == "detected")
            table.add_row(
                mechanism,
                {
                    "modeled": len(modeled),
                    "detected": detected,
                    "coverage": f"{100.0 * self.detection_rate(mechanism):.0f}%",
                    "must-detect": f"{100.0 * self.must_detect_rate(mechanism):.0f}%",
                    "escapes": len(self.escapes(mechanism)),
                },
            )
        return table.render()

"""The metrics registry: counters, gauges and fixed-bucket histograms.

Every simulator structure the paper's evaluation dissects — MCQ occupancy
(§V-A/§V-E), HBT occupancy and resize migration (§V-B), BWB hit rates
(§V-C), B-cache pollution (§IX-B) — reports through one
:class:`MetricsRegistry` per simulated cell, so "why is this workload
slow" questions can be answered from a metrics snapshot instead of ad-hoc
print debugging.

Design constraints:

- **Determinism** — snapshots contain only simulation-derived values
  (cycle counts, event counts), never wall-clock time, and serialise with
  sorted keys, so two runs at the same seed produce byte-identical
  metrics files that are safe to cache, diff and check in as goldens.
- **Near-zero cost when disabled** — components hold an ``obs`` handle
  that is ``None`` by default; every hot-path instrumentation point is
  guarded by a single attribute-load + ``is None`` test, and the bulk of
  the registry is populated by harvesting the existing per-component
  stats dataclasses once, after the pipeline drains.
- **Mergeable** — :func:`merge_snapshots` folds per-cell snapshots into
  suite-level aggregates (counters and histograms sum, gauges keep the
  maximum), which is what the ``--metrics`` report tables show.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (occupancy, rate, footprint)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (for occupancy-style gauges)."""
        if value > self.value:
            self.value = value


class Histogram:
    """A fixed-boundary histogram (cumulative-free, one overflow bucket).

    ``bounds`` are the *upper* edges of the finite buckets; an observation
    ``v`` lands in the first bucket with ``v <= bound``, or in the final
    overflow bucket.  Boundaries are fixed at creation so per-cell
    histograms from different workers merge bucket-by-bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty bounds")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Factory and container for all metrics of one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------- creation

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        elif metric.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return metric

    # ---------------------------------------------------------- convenience

    def count(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """A JSON-able, deterministically ordered view of every metric."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(self._histograms[name].bounds),
                    "counts": list(self._histograms[name].counts),
                    "total": self._histograms[name].total,
                    "count": self._histograms[name].count,
                }
                for name in sorted(self._histograms)
            },
        }


def empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Fold per-cell snapshots into one suite-level aggregate.

    Counters and histogram buckets sum; gauges keep the maximum (they are
    levels, and the interesting suite question is the high-water mark).
    ``None`` entries and empty dicts (cells simulated without obs) are
    skipped, so a partially instrumented sweep still aggregates cleanly.
    """
    merged = empty_snapshot()
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            if name not in merged["gauges"] or value > merged["gauges"][name]:
                merged["gauges"][name] = value
        for name, hist in snapshot.get("histograms", {}).items():
            into = merged["histograms"].get(name)
            if into is None:
                merged["histograms"][name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "total": hist["total"],
                    "count": hist["count"],
                }
                continue
            if into["bounds"] != list(hist["bounds"]):
                raise ValueError(f"histogram {name!r} bounds mismatch in merge")
            into["counts"] = [a + b for a, b in zip(into["counts"], hist["counts"])]
            into["total"] += hist["total"]
            into["count"] += hist["count"]
    # Deterministic key order for serialisation/diffing.
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged

"""Structured event tracing: a bounded ring buffer of cycle-stamped events.

The tracer records what the simulator's mechanism seams *did* — an MCQ
enqueue, an HBT resize beginning and ending, a BWB miss, an AOS exception
— each stamped with the simulated cycle at which it happened, never with
wall-clock time.  The pipeline owns the notion of "now" and publishes it
through :attr:`EventTracer.cycle`; components just call :meth:`emit`.

The buffer is a fixed-capacity ring: a trace-everything run cannot grow
without bound, the *latest* events survive (the ones you want when a run
misbehaves at the end), and the number of dropped events is counted so a
truncated trace is visibly truncated.

Sinks are pluggable: :meth:`events` hands the in-memory ring to tests,
:meth:`to_jsonl` streams one JSON object per line for offline tooling, and
:func:`repro.obs.chrome.chrome_trace` converts the same events to the
Chrome trace-event format Perfetto loads.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Tuple

#: Chrome trace-event phases the tracer emits: instant, begin, end, counter.
PHASES = ("i", "B", "E", "C")


@dataclass(frozen=True)
class TraceEvent:
    """One cycle-stamped structured event."""

    cycle: float
    name: str
    phase: str = "i"
    #: Sorted (key, value) pairs — hashable, deterministic, JSON-able.
    args: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "name": self.name,
            "phase": self.phase,
            "args": dict(self.args),
        }


@dataclass
class TracerStats:
    emitted: int = 0
    dropped: int = 0

    @property
    def retained(self) -> int:
        return self.emitted - self.dropped


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent` values."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        #: The simulated cycle events are stamped with; the pipeline (or
        #: whichever driver owns time) updates this before driving
        #: instrumented components.
        self.cycle: float = 0.0
        self.stats = TracerStats()
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)

    # ---------------------------------------------------------------- emit

    def emit(self, name: str, phase: str = "i", **args: object) -> None:
        """Record one event at the current cycle.

        ``args`` must be JSON-able scalars; they are stored sorted by key
        so identical runs produce identical traces.
        """
        if phase not in PHASES:
            raise ValueError(f"unknown trace phase {phase!r}")
        if len(self._ring) == self.capacity:
            self.stats.dropped += 1
        self.stats.emitted += 1
        self._ring.append(
            TraceEvent(
                cycle=self.cycle,
                name=name,
                phase=phase,
                args=tuple(sorted(args.items())),
            )
        )

    def begin(self, name: str, **args: object) -> None:
        """Open a duration span (Chrome phase ``B``)."""
        self.emit(name, phase="B", **args)

    def end(self, name: str, **args: object) -> None:
        """Close a duration span (Chrome phase ``E``)."""
        self.emit(name, phase="E", **args)

    def sample(self, name: str, **args: object) -> None:
        """Emit a counter sample (Chrome phase ``C``): numeric args only."""
        self.emit(name, phase="C", **args)

    # ---------------------------------------------------------------- sinks

    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (the in-memory sink)."""
        return list(self._ring)

    def to_jsonl(self, path) -> int:
        """Write one JSON object per retained event; returns events written.

        Output is deterministic: insertion order, sorted keys, no
        timestamps other than the simulated cycle.
        """
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event.to_dict(), sort_keys=True))
                fh.write("\n")
        return len(events)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


def read_jsonl(path) -> List[TraceEvent]:
    """Load events written by :meth:`EventTracer.to_jsonl` (test round-trips)."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            events.append(
                TraceEvent(
                    cycle=data["cycle"],
                    name=data["name"],
                    phase=data["phase"],
                    args=tuple(sorted(data["args"].items())),
                )
            )
    return events


def span_pairs(events: Iterable[TraceEvent]) -> List[Tuple[TraceEvent, TraceEvent]]:
    """Match ``B``/``E`` events by name, in order (analysis helper)."""
    open_spans: dict = {}
    pairs: List[Tuple[TraceEvent, TraceEvent]] = []
    for event in events:
        if event.phase == "B":
            open_spans.setdefault(event.name, []).append(event)
        elif event.phase == "E":
            stack = open_spans.get(event.name)
            if stack:
                pairs.append((stack.pop(), event))
    return pairs

"""Chrome trace-event (``chrome://tracing`` / Perfetto) export.

Converts the tracer's cycle-stamped events into the JSON object format of
the Chrome trace-event specification, so a run's timeline — MCQ traffic,
HBT resizes, BWB misses, AOS exceptions — opens directly in
https://ui.perfetto.dev.

Mapping:

- simulated **cycles** become the ``ts`` microsecond field one-to-one
  (at the Table IV 2 GHz clock, 1 "µs" of trace = 1 cycle; the absolute
  unit is irrelevant for timeline inspection and keeps the file free of
  wall-clock nondeterminism);
- tracer phases pass through (``i`` instant, ``B``/``E`` duration spans,
  ``C`` counter tracks);
- unclosed ``B`` spans are closed at the final cycle so the JSON is
  well-formed even when a run ends mid-resize.

Everything is emitted with sorted keys and without timestamps, PIDs or
hostnames, so two runs at the same seed export byte-identical files.
:func:`validate_chrome_trace` is the schema check the tests and the CI
trace-smoke job run against exported files.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .tracer import PHASES, TraceEvent

#: Synthetic pid/tid: one simulated process, one timeline track.
PID = 1
TID = 1


def chrome_events(
    events: Iterable[TraceEvent],
    close_open_spans: bool = True,
) -> List[dict]:
    """Convert tracer events to Chrome trace-event dicts, in order."""
    out: List[dict] = []
    open_spans: List[str] = []
    last_cycle = 0.0
    for event in events:
        last_cycle = event.cycle
        record: dict = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.cycle,
            "pid": PID,
            "tid": TID,
        }
        args = dict(event.args)
        if event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        if event.phase == "B":
            open_spans.append(event.name)
        elif event.phase == "E":
            if event.name in open_spans:
                open_spans.remove(event.name)
        if args:
            record["args"] = args
        out.append(record)
    if close_open_spans:
        # A run that ends mid-span (e.g. mid-resize) still yields balanced
        # B/E pairs; Perfetto renders the span as running to the end.
        for name in reversed(open_spans):
            out.append(
                {"name": name, "ph": "E", "ts": last_cycle, "pid": PID, "tid": TID}
            )
    return out


def chrome_trace(
    events: Iterable[TraceEvent],
    metadata: Optional[Dict[str, object]] = None,
) -> dict:
    """The full JSON-object-format trace document."""
    return {
        "traceEvents": chrome_events(events),
        "displayTimeUnit": "ms",
        "otherData": dict(sorted((metadata or {}).items())),
    }


def dump_chrome_trace(
    path,
    events: Iterable[TraceEvent],
    metadata: Optional[Dict[str, object]] = None,
) -> dict:
    """Write a deterministic (sorted-keys) trace file; returns the document."""
    document = chrome_trace(events, metadata=metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return document


def validate_chrome_trace(document: object) -> List[str]:
    """Schema-check one trace document; returns a list of problems.

    An empty list means the document is a valid JSON-object-format Chrome
    trace: a dict with a ``traceEvents`` list whose entries carry a string
    ``name``, a known ``ph``, a non-negative numeric ``ts`` and integer
    ``pid``/``tid``, with ``B``/``E`` spans balanced per name.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    depth: Dict[str, int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing/empty name")
            name = "?"
        phase = event.get("ph")
        if phase not in PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: bad {field}")
        if phase == "B":
            depth[name] = depth.get(name, 0) + 1
        elif phase == "E":
            depth[name] = depth.get(name, 0) - 1
            if depth[name] < 0:
                problems.append(f"{where}: E without matching B for {name!r}")
        if phase == "C":
            args = event.get("args", {})
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter event without args")
            elif not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in args.values()
            ):
                problems.append(f"{where}: counter args must be numeric")
    for name, value in sorted(depth.items()):
        if value > 0:
            problems.append(f"unclosed span {name!r} ({value} open B events)")
    return problems


def validate_chrome_trace_file(path) -> List[str]:
    """Load + validate one exported trace file (the CI smoke entry point)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"unreadable trace file: {exc}"]
    return validate_chrome_trace(document)

"""Per-phase wall-clock profiler for the experiment engine itself.

The simulator's observability is cycle-stamped and deterministic; the
*engine* around it (trace generation, lowering, simulation, reporting,
cache I/O) is ordinary Python whose wall-clock split is what a "why is
``python -m repro all`` slow" question needs.  :class:`PhaseProfiler`
accumulates seconds per named phase with negligible overhead.

Wall-clock numbers are intentionally kept **out** of the deterministic
trace/metrics artifacts — the profiler prints its own summary (and can
export its own separate Chrome trace) so cached artifacts stay
byte-stable across runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List


class PhaseProfiler:
    """Accumulates wall-clock seconds per named engine phase."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._start = clock()
        #: phase -> accumulated seconds, in first-seen order.
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        #: (phase, start, end) spans for the Chrome export.
        self._spans: List[tuple] = []

    @contextmanager
    def phase(self, name: str):
        """Time one engine phase; phases may repeat and accumulate."""
        begin = self._clock()
        try:
            yield self
        finally:
            end = self._clock()
            self._seconds[name] = self._seconds.get(name, 0.0) + (end - begin)
            self._calls[name] = self._calls.get(name, 0) + 1
            self._spans.append((name, begin, end))

    def add(self, name: str, seconds: float) -> None:
        """Fold in an externally timed duration (e.g. a subprocess)."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    # ------------------------------------------------------------ reporting

    def summary(self) -> Dict[str, float]:
        """phase -> seconds, in first-seen order."""
        return dict(self._seconds)

    def total(self) -> float:
        return sum(self._seconds.values())

    def format(self) -> str:
        """A compact phase table: seconds, share, call count."""
        total = self.total()
        lines = ["engine phase profile (wall clock)"]
        for name, seconds in self._seconds.items():
            share = seconds / total if total else 0.0
            lines.append(
                f"  {name:<18s} {seconds:8.3f}s  {share:6.1%}  "
                f"x{self._calls[name]}"
            )
        lines.append(f"  {'total':<18s} {total:8.3f}s")
        return "\n".join(lines)

    def chrome_events(self) -> List[dict]:
        """The engine phases as Chrome ``X`` (complete) events.

        Timestamps are microseconds since profiler creation — wall clock,
        so this export is for engine profiling only and is never merged
        into the deterministic simulation trace.
        """
        events = []
        for name, begin, end in self._spans:
            events.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": (begin - self._start) * 1e6,
                    "dur": (end - begin) * 1e6,
                    "pid": 2,
                    "tid": 1,
                }
            )
        return events

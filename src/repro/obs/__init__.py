"""``repro.obs`` — always-on observability: metrics, tracing, profiling.

Three layers, all optional and all deterministic:

- :class:`MetricsRegistry` — counters/gauges/histograms per simulated
  cell, harvested from the MCU/MCQ, HBT, BWB, cache hierarchy, allocator
  and fault injector (see :mod:`repro.obs.registry`);
- :class:`EventTracer` — a bounded ring buffer of cycle-stamped events
  (``mcq.enqueue``, ``hbt.resize.begin/end``, ``bwb.miss``,
  ``aos.exception``, ``fault.inject``) with JSONL and in-memory sinks
  (see :mod:`repro.obs.tracer`);
- :func:`chrome_trace` — Chrome trace-event / Perfetto export of a run's
  timeline, plus :class:`PhaseProfiler` for the engine's own wall-clock
  split (see :mod:`repro.obs.chrome` and :mod:`repro.obs.profiler`).

Components take an ``obs`` handle (an :class:`Observability`, or ``None``
— the default, costing one attribute test per instrumentation point).
:class:`ObsSettings` is the picklable description of what to collect; it
rides on :class:`~repro.experiments.common.RunSettings` so worker
processes rebuild an equivalent live :class:`Observability` locally and
return metric snapshots through their ``SimulationResult``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .chrome import (
    chrome_events,
    chrome_trace,
    dump_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from .profiler import PhaseProfiler
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
)
from .tracer import EventTracer, TraceEvent, read_jsonl, span_pairs

#: Default ring capacity: enough for every event of a --quick window while
#: bounding a full-length run to a few MB of retained events.
DEFAULT_TRACE_CAPACITY = 65536


@dataclass(frozen=True)
class ObsSettings:
    """Picklable observability configuration carried by ``RunSettings``.

    ``enabled=False`` (the default) means no registry, no tracer and no
    per-event work anywhere in the simulator — the disabled-mode overhead
    is a ``None`` test per instrumentation point.  ``tracing=False``
    collects metrics only (cheaper; what ``--metrics`` sweeps use);
    ``trace_capacity`` bounds the event ring.
    """

    enabled: bool = False
    tracing: bool = True
    trace_capacity: int = DEFAULT_TRACE_CAPACITY

    def create(self) -> Optional["Observability"]:
        """A live :class:`Observability` for these settings (None if off)."""
        if not self.enabled:
            return None
        return Observability(
            tracer=EventTracer(self.trace_capacity) if self.tracing else None
        )


class Observability:
    """The live bundle one simulated run reports through."""

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer

    # Thin pass-throughs so instrumentation points read naturally.

    def emit(self, name: str, phase: str = "i", **args: object) -> None:
        """Record a cycle-stamped event (no-op without a tracer)."""
        if self.tracer is not None:
            self.tracer.emit(name, phase=phase, **args)

    def set_cycle(self, cycle: float) -> None:
        """Publish the simulated "now" used to stamp subsequent events."""
        if self.tracer is not None:
            self.tracer.cycle = cycle

    def snapshot(self) -> dict:
        return self.registry.snapshot()


__all__ = [
    "Counter",
    "DEFAULT_TRACE_CAPACITY",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSettings",
    "Observability",
    "PhaseProfiler",
    "TraceEvent",
    "chrome_events",
    "chrome_trace",
    "dump_chrome_trace",
    "empty_snapshot",
    "merge_snapshots",
    "read_jsonl",
    "span_pairs",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]

"""A functional PACTight-style pointer-identity sealing model.

PACTight (see PAPERS.md) seals each sensitive pointer with a PAC whose
modifier is a per-object random tag, giving three properties:
unforgeability (a crafted or bit-flipped pointer fails the seal),
copy-detection for stale copies (the tag rotates when the object's
storage is reused), and temporal safety (the tag is destroyed on free).
It performs *no bounds checking* — a legitimately sealed pointer may
wander out of bounds freely, which is exactly the spatial blind spot
the oracle records — and also seals return addresses, covering the
control-flow path AOS leaves open.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..crypto.pac import PACGenerator, PAKeys
from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory


class PACTightFault(Exception):
    """A seal authentication failed (forged, stale, or freed pointer)."""


@dataclass(frozen=True)
class SealedPointer:
    """A pointer sealed to its object's identity tag."""

    address: int
    base: int
    pac: int

    def offset(self, delta: int) -> "SealedPointer":
        return SealedPointer(address=self.address + delta, base=self.base, pac=self.pac)

    def __int__(self) -> int:
        return self.address


class PACTightRuntime:
    """Identity-sealed pointers over a raw heap (no bounds checks)."""

    def __init__(
        self,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        pac_bits: int = 16,
        pac_mode: str = "fast",
        seed: int = 0x71647,
    ) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        self.generator = PACGenerator(keys=PAKeys(), pac_bits=pac_bits, mode=pac_mode)
        self._rng = random.Random(seed)
        #: object base -> live identity tag (absent once freed).
        self._tags: Dict[int, int] = {}
        #: sealed return-address stack (address, seal) — mutable frames so
        #: an attacker overwrite is representable.
        self._frames: List[List[int]] = []
        self.auth_failures = 0

    # -------------------------------------------------------------- sealing

    def _seal(self, address: int, tag: int) -> int:
        return self.generator.compute(address, tag, key_name="da")

    def authenticate(self, pointer: SealedPointer) -> int:
        tag = self._tags.get(pointer.base)
        if tag is None:
            self.auth_failures += 1
            raise PACTightFault(
                f"no identity tag for object {pointer.base:#x} "
                f"(freed or never allocated)"
            )
        if pointer.pac != self._seal(pointer.base, tag):
            self.auth_failures += 1
            raise PACTightFault(
                f"seal mismatch for pointer {pointer.address:#x} "
                f"(object {pointer.base:#x})"
            )
        return pointer.address

    # ------------------------------------------------------------------ heap

    def malloc(self, size: int) -> SealedPointer:
        base = self.allocator.malloc(size)
        tag = self._rng.getrandbits(32) | 1
        self._tags[base] = tag
        return SealedPointer(address=base, base=base, pac=self._seal(base, tag))

    def free(self, pointer: SealedPointer) -> SealedPointer:
        self.authenticate(pointer)
        self.allocator.free(pointer.base)
        del self._tags[pointer.base]
        return pointer

    def load(self, pointer: SealedPointer, size: int = 8) -> int:
        address = self.authenticate(pointer)
        return int.from_bytes(self.memory.read_bytes(address, size), "little")

    def store(self, pointer: SealedPointer, value: int, size: int = 8) -> None:
        address = self.authenticate(pointer)
        self.memory.write_bytes(
            address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

    # ---------------------------------------------------------- return path

    @property
    def depth(self) -> int:
        return len(self._frames)

    def call(self, return_address: int) -> None:
        seal = self.generator.compute(
            return_address, len(self._frames), key_name="ia"
        )
        self._frames.append([return_address, seal])

    def smash_return(self, value: int) -> None:
        """Attacker overwrite of the saved return address (data write —
        the seal cannot be recomputed without the key)."""
        if self._frames:
            frame = self._frames[-1]
            frame[0] = value if value != frame[0] else value ^ 0x10

    def ret(self) -> int:
        if not self._frames:
            raise PACTightFault("return-stack underflow")
        address, seal = self._frames.pop()
        expected = self.generator.compute(address, len(self._frames), key_name="ia")
        if seal != expected:
            self.auth_failures += 1
            raise PACTightFault(
                f"return address {address:#x} fails its seal"
            )
        return address

"""A functional Intel MPX-style two-level bounds-table model [12].

MPX associates bounds with the *memory location a pointer is stored in*:
``bndstx``/``bndldx`` walk a two-level structure — bounds directory (BD)
then bounds table (BT) — indexed by the pointer's storage address
(Fig. 4c).  That walk is the paper's Challenge 5: "approximately three
register-to-register moves, three shifts, and two memory loads" per
metadata access, versus AOS's single add (base + PAC) and one load.

This model implements the BD/BT walk functionally and exposes the
per-access instruction cost so the Challenge-5 comparison is quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory


@dataclass(frozen=True)
class AddressingCost:
    """Instruction cost of one metadata (bounds) access."""

    moves: int
    shifts: int
    adds: int
    memory_loads: int

    @property
    def total_instructions(self) -> int:
        return self.moves + self.shifts + self.adds + self.memory_loads


#: Challenge 5: the MPX two-level walk (§III-A).
MPX_ADDRESSING_COST = AddressingCost(moves=3, shifts=3, adds=0, memory_loads=2)
#: AOS: BndAddr = BND_BASE + (PAC << shift) (Eq. 1/2) and one line load.
AOS_ADDRESSING_COST = AddressingCost(moves=0, shifts=1, adds=1, memory_loads=1)


class MPXFault(Exception):
    """An MPX bounds check failed."""


class MPXRuntime:
    """Two-level (BD -> BT) bounds storage keyed by pointer location."""

    #: Geometry loosely following MPX on 64-bit: BD indexed by the upper
    #: pointer-location bits, BT entries by the lower ones.
    BD_SHIFT = 20
    BT_MASK = (1 << 20) - 1

    def __init__(self, layout: AddressSpaceLayout = DEFAULT_LAYOUT) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        #: Bounds directory: BD index -> bounds table (dict).
        self._directory: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self.table_loads = 0
        self.check_failures = 0

    def malloc(self, size: int) -> int:
        return self.allocator.malloc(size)

    def free(self, pointer: int) -> None:
        self.allocator.free(pointer)

    # -------------------------------------------------------------- bndstx

    def bndstx(self, pointer_location: int, lower: int, upper: int) -> None:
        """Store bounds for the pointer held at ``pointer_location``."""
        bd_index = pointer_location >> self.BD_SHIFT
        table = self._directory.setdefault(bd_index, {})
        table[pointer_location & self.BT_MASK] = (lower, upper)

    def bndldx(self, pointer_location: int) -> Optional[Tuple[int, int]]:
        """The two-level walk: BD load, then BT load (2 memory loads)."""
        self.table_loads += 2
        table = self._directory.get(pointer_location >> self.BD_SHIFT)
        if table is None:
            return None
        return table.get(pointer_location & self.BT_MASK)

    # -------------------------------------------------------------- checks

    def check(self, pointer_location: int, address: int, size: int = 8) -> None:
        """bndcl/bndcu against the bounds bound to the pointer's slot.

        MPX treats missing bounds as unbounded (it must, for compatibility
        with uninstrumented code) — one of its soundness gaps.
        """
        bounds = self.bndldx(pointer_location)
        if bounds is None:
            return
        lower, upper = bounds
        if address < lower or address + size > upper:
            self.check_failures += 1
            raise MPXFault(
                f"bounds violation: [{address:#x}, {address + size:#x}) outside "
                f"[{lower:#x}, {upper:#x})"
            )

    def load(self, pointer_location: int, pointer: int, size: int = 8) -> int:
        self.check(pointer_location, pointer, size)
        return int.from_bytes(self.memory.read_bytes(pointer, size), "little")

    def store(self, pointer_location: int, pointer: int, value: int, size: int = 8) -> None:
        self.check(pointer_location, pointer, size)
        self.memory.write_bytes(
            pointer, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

"""A functional REST-style redzone (trip-wire) model [8] (§X).

REST surrounds allocations with blacklisted regions holding random tokens
and traps any access touching them.  It is cheap, but — as the paper's
introduction stresses — it cannot stop *non-adjacent* violations that jump
over the redzones, and its temporal protection relies on a quarantine pool
(freed chunks stay poisoned until recycled).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory

REDZONE_BYTES = 64


class RedzoneFault(Exception):
    """An access touched a blacklisted (redzone or quarantined) region."""


class RestRuntime:
    """Redzone-protected heap with a quarantine pool."""

    def __init__(
        self,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        quarantine_chunks: int = 64,
    ) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        #: Blacklisted byte ranges: set of (start, end) tuples.
        self._redzones: Dict[int, Tuple[int, int]] = {}
        self._quarantine: Deque[Tuple[int, Tuple[int, int]]] = deque()
        self.quarantine_chunks = quarantine_chunks
        self.detections = 0

    def malloc(self, size: int) -> int:
        """Allocate with leading and trailing redzones."""
        padded = self.allocator.malloc(size + 2 * REDZONE_BYTES)
        base = padded + REDZONE_BYTES
        self._redzones[base] = (padded, padded + REDZONE_BYTES + size + REDZONE_BYTES)
        return base

    def free(self, pointer: int) -> None:
        """Quarantine the chunk: the whole object becomes a trip-wire until
        it is recycled (the quarantine pool whose cost §IV-C calls out)."""
        zone = self._redzones.pop(pointer, None)
        if zone is None:
            raise RedzoneFault("free(): unknown or already-freed pointer")
        self._quarantine.append((pointer, zone))
        while len(self._quarantine) > self.quarantine_chunks:
            old_ptr, old_zone = self._quarantine.popleft()
            self.allocator.free(old_ptr - REDZONE_BYTES)

    def _object_span(self, pointer: int) -> Tuple[int, int]:
        zone = self._redzones.get(pointer)
        if zone is None:
            return (0, 0)
        return zone

    def check(self, address: int, size: int = 8) -> None:
        """Trap accesses that touch a redzone or a quarantined chunk."""
        end = address + size
        for base, (lo, hi) in self._redzones.items():
            inner_lo, inner_hi = lo + REDZONE_BYTES, hi - REDZONE_BYTES
            # Touching the guard bands around a live object is a violation.
            if address < inner_lo and end > lo:
                self.detections += 1
                raise RedzoneFault(f"access {address:#x} hits leading redzone of {base:#x}")
            if end > inner_hi and address < hi:
                self.detections += 1
                raise RedzoneFault(f"access {address:#x} hits trailing redzone of {base:#x}")
        for _ptr, (lo, hi) in self._quarantine:
            if address < hi and end > lo:
                self.detections += 1
                raise RedzoneFault(f"access {address:#x} hits quarantined chunk")

    def load(self, address: int, size: int = 8) -> int:
        self.check(address, size)
        return int.from_bytes(self.memory.read_bytes(address, size), "little")

    def store(self, address: int, value: int, size: int = 8) -> None:
        self.check(address, size)
        self.memory.write_bytes(
            address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

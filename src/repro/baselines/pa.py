"""A functional PARTS-style Arm PA pointer-integrity model [21] (§II-B).

PA signs pointers (return addresses on ``pacia``, data pointers on store)
and authenticates them before use.  It detects *pointer corruption* — any
modification of a signed pointer's bits — but provides neither spatial nor
temporal safety: a legitimately derived out-of-bounds pointer, or a freed
pointer, authenticates just fine.  That gap (Fig. 2's heap OOB / UAF rows)
is precisely the motivation for AOS (§II-B last paragraph).
"""

from __future__ import annotations


from ..crypto.pac import PACGenerator, PAKeys
from ..isa.encoding import PointerLayout
from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory


class PAFault(Exception):
    """A PA authentication failed (corrupted pointer)."""


class PARuntime:
    """Return-address and data-pointer signing/authentication."""

    def __init__(
        self,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        pac_bits: int = 16,
        pac_mode: str = "qarma",
    ) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        self.pointer_layout = PointerLayout(pac_bits=pac_bits)
        self.generator = PACGenerator(keys=PAKeys(), pac_bits=pac_bits, mode=pac_mode)
        self.auth_failures = 0

    # -------------------------------------------------- pointer sign / auth

    def pacda(self, pointer: int, modifier: int) -> int:
        """Sign a data pointer (on-store signing in PARTS)."""
        address = self.pointer_layout.address(pointer)
        pac = self.generator.compute(address, modifier, key_name="da")
        # PA has no AHC; reuse the layout with AHC=0 semantics by placing
        # the PAC only (an unsigned-looking AHC field).
        return (pac << self.pointer_layout.pac_shift) | address

    def autda(self, pointer: int, modifier: int) -> int:
        """Authenticate a data pointer (on-load authentication)."""
        address = self.pointer_layout.address(pointer)
        pac = (pointer & self.pointer_layout.pac_mask) >> self.pointer_layout.pac_shift
        expected = self.generator.compute(address, modifier, key_name="da")
        if pac != expected:
            self.auth_failures += 1
            raise PAFault(f"autda: PAC mismatch for {address:#x}")
        return address

    def pacia(self, return_address: int, sp: int) -> int:
        """Sign a return address with SP as modifier (Fig. 3)."""
        address = self.pointer_layout.address(return_address)
        pac = self.generator.compute(address, sp, key_name="ia")
        return (pac << self.pointer_layout.pac_shift) | address

    def autia(self, signed_lr: int, sp: int) -> int:
        address = self.pointer_layout.address(signed_lr)
        pac = (signed_lr & self.pointer_layout.pac_mask) >> self.pointer_layout.pac_shift
        expected = self.generator.compute(address, sp, key_name="ia")
        if pac != expected:
            self.auth_failures += 1
            raise PAFault(f"autia: return address {address:#x} corrupted")
        return address

    # ------------------------------------------------------------ heap shim

    def malloc(self, size: int) -> int:
        """PA does not protect heap objects; malloc returns a raw pointer."""
        return self.allocator.malloc(size)

    def free(self, pointer: int) -> None:
        self.allocator.free(pointer)

    def load(self, pointer: int, size: int = 8) -> int:
        """Unchecked: PA performs no bounds or liveness checks on access."""
        return int.from_bytes(
            self.memory.read_bytes(self.pointer_layout.address(pointer), size), "little"
        )

    def store(self, pointer: int, value: int, size: int = 8) -> None:
        self.memory.write_bytes(
            self.pointer_layout.address(pointer),
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"),
        )

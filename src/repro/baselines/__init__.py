"""Baseline protection mechanisms the paper compares against.

Functional models used by the security analysis (§VII) and the challenge
comparison (§III):

- :mod:`~repro.baselines.watchdog` — Watchdog [11]: lock-and-key temporal
  checking plus bounds, metadata in extended registers / shadow memory;
- :mod:`~repro.baselines.pa` — PARTS-style Arm PA pointer integrity [21]:
  detects pointer *corruption* but neither spatial nor temporal errors;
- :mod:`~repro.baselines.rest` — REST-style redzone blacklisting [8]:
  catches adjacent overflows, misses non-adjacent ones;
- :mod:`~repro.baselines.mpx` — Intel MPX-style two-level bounds tables
  [12]: the Challenge-5 comparator with its multi-instruction metadata
  addressing.

Their *timing* counterparts live in :mod:`repro.compiler.passes` (the
Watchdog and PA lowerings used by Figs. 14/18).
"""

from .watchdog import WatchdogRuntime, WatchdogPointer, WatchdogFault
from .pa import PARuntime, PAFault
from .rest import RestRuntime, RedzoneFault
from .mpx import MPXRuntime, MPXFault, MPX_ADDRESSING_COST, AOS_ADDRESSING_COST
from .mte import MTERuntime, MTEFault, TaggedPointer

__all__ = [
    "WatchdogRuntime",
    "WatchdogPointer",
    "WatchdogFault",
    "PARuntime",
    "PAFault",
    "RestRuntime",
    "RedzoneFault",
    "MPXRuntime",
    "MPXFault",
    "MPX_ADDRESSING_COST",
    "AOS_ADDRESSING_COST",
    "MTERuntime",
    "MTEFault",
    "TaggedPointer",
]

"""A functional model of Watchdog [11] (lock-and-key + bounds checking).

Watchdog attaches a 4-tuple of metadata to every pointer *register* —
(base, bound, key, lock address) — propagated through pointer arithmetic
in widened registers (Fig. 4a / Fig. 5a).  Dereferences check

1. temporal safety: ``*(lock) == key`` (the lock is invalidated on free);
2. spatial safety: ``base <= addr < bound``.

Because Python integers cannot carry sidecar metadata the way widened
registers do, pointers here are :class:`WatchdogPointer` values whose
``offset`` method models the metadata propagation of Fig. 5a (° and ±).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict

from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory

INVALID_KEY = 0


class WatchdogFault(Exception):
    """A Watchdog check µop failed."""


@dataclass(frozen=True)
class WatchdogPointer:
    """A fat pointer: address plus the Watchdog metadata (Fig. 4a)."""

    address: int
    base: int
    bound: int           # exclusive upper bound
    key: int
    lock_address: int

    def offset(self, delta: int) -> "WatchdogPointer":
        """Pointer arithmetic: the destination inherits the metadata
        (the extra propagation instructions of Fig. 5a, ° and ±)."""
        return replace(self, address=self.address + delta)

    def __int__(self) -> int:
        return self.address


class WatchdogRuntime:
    """A Watchdog-protected heap."""

    def __init__(self, layout: AddressSpaceLayout = DEFAULT_LAYOUT) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        self.layout = layout
        self._key_source = itertools.count(1)
        #: lock address -> current key value ("lock locations").
        self._locks: Dict[int, int] = {}
        self._next_lock = layout.shadow_base
        self.checks = 0
        self.check_failures = 0

    # ------------------------------------------------------------------ heap

    def malloc(self, size: int) -> WatchdogPointer:
        address = self.allocator.malloc(size)
        key = next(self._key_source)
        lock_address = self._next_lock
        self._next_lock += 8
        self._locks[lock_address] = key
        return WatchdogPointer(
            address=address,
            base=address,
            bound=address + size,
            key=key,
            lock_address=lock_address,
        )

    def free(self, pointer: WatchdogPointer) -> None:
        """Invalidate the lock, then free (Fig. 5a ­: *(id.lock) = INVALID)."""
        if self._locks.get(pointer.lock_address, INVALID_KEY) != pointer.key:
            raise WatchdogFault("free(): stale or double free detected")
        self._locks[pointer.lock_address] = INVALID_KEY
        self.allocator.free(pointer.base)

    # ---------------------------------------------------------------- checks

    def check(self, pointer: WatchdogPointer) -> None:
        """The check µop inserted before every dereference (Fig. 5a ®¯)."""
        self.checks += 1
        if self._locks.get(pointer.lock_address, INVALID_KEY) != pointer.key:
            self.check_failures += 1
            raise WatchdogFault(
                f"use-after-free: lock at {pointer.lock_address:#x} no longer "
                f"holds key {pointer.key}"
            )
        if not pointer.base <= pointer.address < pointer.bound:
            self.check_failures += 1
            raise WatchdogFault(
                f"out-of-bounds: {pointer.address:#x} outside "
                f"[{pointer.base:#x}, {pointer.bound:#x})"
            )

    def load(self, pointer: WatchdogPointer, size: int = 8) -> int:
        self.check(pointer)
        return int.from_bytes(self.memory.read_bytes(pointer.address, size), "little")

    def store(self, pointer: WatchdogPointer, value: int, size: int = 8) -> None:
        self.check(pointer)
        self.memory.write_bytes(
            pointer.address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

"""A functional CHERI-style capability model (§X, [22]/[23]).

Capability machines replace raw pointers with unforgeable *capabilities*:
fat pointers carrying bounds and permissions, validated on every
dereference and protected by a hardware tag bit that clears whenever
capability bytes are manipulated as data.  The paper positions CHERI as
the strongest related class but notes "the implementation requires
changes to the entire system ... the performance overhead and design
complexity are high" (§X).

The model implements monotonic capability derivation (bounds can only
shrink, permissions only drop), per-dereference bounds/permission checks,
and the tag-invalidation rule that makes forging impossible — the
properties the security matrix exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Flag, auto

from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory


class CheriFault(Exception):
    """A capability check failed."""


class Perm(Flag):
    """Capability permission bits (a small subset of CHERI's)."""

    LOAD = auto()
    STORE = auto()

    @classmethod
    def rw(cls) -> "Perm":
        return cls.LOAD | cls.STORE


@dataclass(frozen=True)
class Capability:
    """A tagged fat pointer: address + bounds + permissions (Fig. 4a)."""

    address: int
    base: int
    length: int
    perms: Perm
    tag: bool = True

    @property
    def top(self) -> int:
        return self.base + self.length

    # --------------------------------------------------- monotonic derivation

    def offset(self, delta: int) -> "Capability":
        """Pointer arithmetic preserves bounds and permissions."""
        return replace(self, address=self.address + delta)

    def narrow(self, base_offset: int, length: int) -> "Capability":
        """CSetBounds: bounds may only shrink (monotonicity)."""
        new_base = self.base + base_offset
        if base_offset < 0 or new_base + length > self.top:
            raise CheriFault("CSetBounds: cannot grow a capability's bounds")
        return replace(self, address=new_base, base=new_base, length=length)

    def drop_perms(self, perms: Perm) -> "Capability":
        """CAndPerm: permissions may only be removed."""
        return replace(self, perms=self.perms & perms)

    def untagged(self) -> "Capability":
        """What survives a data-plane overwrite: the tag clears."""
        return replace(self, tag=False)


class CheriRuntime:
    """A capability-protected heap."""

    def __init__(self, layout: AddressSpaceLayout = DEFAULT_LAYOUT) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        self.checks = 0
        self.faults = 0

    def malloc(self, size: int) -> Capability:
        address = self.allocator.malloc(size)
        return Capability(
            address=address, base=address, length=size, perms=Perm.rw()
        )

    def free(self, cap: Capability) -> Capability:
        """Free the allocation.  Base CHERI leaves temporal safety to
        revocation sweeps (CHERIvoke, §X [42]); the returned capability is
        *still tagged* — the model preserves that documented gap."""
        self._check(cap, Perm.LOAD, size=1)
        self.allocator.free(cap.base)
        return cap

    # ---------------------------------------------------------------- checks

    def _check(self, cap: Capability, perm: Perm, size: int) -> None:
        self.checks += 1
        if not isinstance(cap, Capability) or not cap.tag:
            self.faults += 1
            raise CheriFault("tag violation: not a valid capability")
        if perm not in cap.perms:
            self.faults += 1
            raise CheriFault(f"permission violation: {perm} not granted")
        if cap.address < cap.base or cap.address + size > cap.top:
            self.faults += 1
            raise CheriFault(
                f"bounds violation: [{cap.address:#x}, {cap.address + size:#x}) "
                f"outside [{cap.base:#x}, {cap.top:#x})"
            )

    def load(self, cap: Capability, size: int = 8) -> int:
        self._check(cap, Perm.LOAD, size)
        return int.from_bytes(self.memory.read_bytes(cap.address, size), "little")

    def store(self, cap: Capability, value: int, size: int = 8) -> None:
        self._check(cap, Perm.STORE, size)
        self.memory.write_bytes(
            cap.address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

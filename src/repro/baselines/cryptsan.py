"""A functional CryptSan-style MAC-on-access tagged-memory model.

CryptSan (PACMem/CryptSan lineage, see PAPERS.md) binds every heap
object to a cryptographic MAC computed over its base address and an
allocation version, replicates the MAC into a shadow tag for each
16-byte granule the object owns, and carries the same MAC in the
pointer.  Every load/store recomputes nothing — it simply compares the
pointer's MAC against the granule's shadow tag, so *any* access through
a pointer to memory the pointer's object does not own faults:

- spatial violations (adjacent, linear, and non-linear OOB alike —
  unlike trip-wire redzones, a strided jump lands on a granule with a
  foreign or absent tag);
- temporal violations (free clears the granule tags; reallocation bumps
  the version, so a stale MAC never matches the recycled slot);
- MAC forgery (a flipped tag bit in the pointer misses every granule).

Intra-object overflows stay invisible — the whole object shares one
MAC — which keeps the model honest about the object-granularity
threat model it shares with AOS (§III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..crypto.pac import PACGenerator, PAKeys
from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory

#: Shadow-tag granularity (bytes of data per MAC tag).
GRANULE = 16


class CryptSanFault(Exception):
    """A MAC check failed (pointer MAC != granule shadow tag)."""


@dataclass(frozen=True)
class MACPointer:
    """A pointer carrying the MAC of the object it was derived from."""

    address: int
    base: int
    mac: int

    def offset(self, delta: int) -> "MACPointer":
        return MACPointer(address=self.address + delta, base=self.base, mac=self.mac)

    def __int__(self) -> int:
        return self.address


class CryptSanRuntime:
    """A heap whose every access is checked against per-granule MACs."""

    def __init__(
        self,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        mac_bits: int = 16,
        pac_mode: str = "fast",
    ) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        self.generator = PACGenerator(keys=PAKeys(), pac_bits=mac_bits, mode=pac_mode)
        #: granule index -> owning object's MAC shadow tag.
        self._tags: Dict[int, int] = {}
        #: base address -> allocation version (bumped on every reuse).
        self._versions: Dict[int, int] = {}
        self.checks = 0
        self.mac_faults = 0

    # ------------------------------------------------------------------ MACs

    @staticmethod
    def _granules(address: int, size: int):
        start = address // GRANULE
        end = (address + max(size, 1) - 1) // GRANULE
        return range(start, end + 1)

    def _mac(self, base: int, version: int) -> int:
        return self.generator.compute(base, version, key_name="da")

    # ------------------------------------------------------------------ heap

    def malloc(self, size: int) -> MACPointer:
        base = self.allocator.malloc(size)
        version = self._versions.get(base, 0) + 1
        self._versions[base] = version
        mac = self._mac(base, version)
        for granule in self._granules(base, size):
            self._tags[granule] = mac
        return MACPointer(address=base, base=base, mac=mac)

    def free(self, pointer: MACPointer) -> MACPointer:
        self.check(pointer)
        size = self.allocator.allocated_size(pointer.address)
        self.allocator.free(pointer.address)
        # Untagging on free: a stale MAC can never match again.
        for granule in self._granules(pointer.address, size):
            self._tags.pop(granule, None)
        return pointer

    # ---------------------------------------------------------------- checks

    def check(self, pointer: MACPointer, size: int = 8) -> None:
        self.checks += 1
        for granule in self._granules(pointer.address, size):
            tag = self._tags.get(granule)
            if tag != pointer.mac:
                self.mac_faults += 1
                have = "untagged" if tag is None else f"{tag:#x}"
                raise CryptSanFault(
                    f"MAC check fault at {pointer.address:#x}: pointer MAC "
                    f"{pointer.mac:#x} vs granule tag {have}"
                )

    def load(self, pointer: MACPointer, size: int = 8) -> int:
        self.check(pointer, size)
        return int.from_bytes(self.memory.read_bytes(pointer.address, size), "little")

    def store(self, pointer: MACPointer, value: int, size: int = 8) -> None:
        self.check(pointer, size)
        self.memory.write_bytes(
            pointer.address,
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"),
        )

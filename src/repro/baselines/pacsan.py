"""A functional PACSan-style shadow-metadata PAC-check model.

PACSan (see PAPERS.md) signs every heap pointer at its birth site and
keeps the object's bounds and liveness in a shadow table indexed by the
allocation id the signature binds.  Every access first authenticates
the signature (catching forged or bit-flipped pointers), then checks
the shadow entry: liveness (use-after-free, double free) and bounds
(any OOB, linear or strided).  Like every object-granularity scheme it
cannot see intra-object overflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..crypto.pac import PACGenerator, PAKeys
from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory


class PACSanFault(Exception):
    """A PACSan check failed (signature, liveness, or bounds)."""


@dataclass(frozen=True)
class SignedPointer:
    """A pointer carrying its allocation id and birth signature."""

    address: int
    oid: int
    pac: int

    def offset(self, delta: int) -> "SignedPointer":
        return SignedPointer(address=self.address + delta, oid=self.oid, pac=self.pac)

    def __int__(self) -> int:
        return self.address


@dataclass
class _ShadowEntry:
    base: int
    size: int
    alive: bool


class PACSanRuntime:
    """Shadow-metadata table + per-pointer signatures."""

    def __init__(
        self,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        pac_bits: int = 16,
        pac_mode: str = "fast",
    ) -> None:
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        self.generator = PACGenerator(keys=PAKeys(), pac_bits=pac_bits, mode=pac_mode)
        self._shadow: Dict[int, _ShadowEntry] = {}
        self._next_oid = 1
        self.checks = 0
        self.auth_failures = 0

    # -------------------------------------------------------------- signing

    def _sign(self, base: int, oid: int) -> int:
        return self.generator.compute(base, oid, key_name="da")

    def _authenticate(self, pointer: SignedPointer) -> _ShadowEntry:
        entry = self._shadow.get(pointer.oid)
        if entry is None:
            self.auth_failures += 1
            raise PACSanFault(
                f"no shadow metadata for allocation id {pointer.oid}"
            )
        if pointer.pac != self._sign(entry.base, pointer.oid):
            self.auth_failures += 1
            raise PACSanFault(
                f"signature mismatch for pointer {pointer.address:#x}"
            )
        return entry

    # ------------------------------------------------------------------ heap

    def malloc(self, size: int) -> SignedPointer:
        base = self.allocator.malloc(size)
        oid = self._next_oid
        self._next_oid += 1
        self._shadow[oid] = _ShadowEntry(base=base, size=size, alive=True)
        return SignedPointer(address=base, oid=oid, pac=self._sign(base, oid))

    def free(self, pointer: SignedPointer) -> SignedPointer:
        entry = self._authenticate(pointer)
        if not entry.alive:
            raise PACSanFault(
                f"double free of allocation id {pointer.oid} "
                f"({entry.base:#x})"
            )
        if pointer.address != entry.base:
            raise PACSanFault(
                f"free of interior pointer {pointer.address:#x} "
                f"(object base {entry.base:#x})"
            )
        entry.alive = False
        self.allocator.free(entry.base)
        return pointer

    # ---------------------------------------------------------------- checks

    def check(self, pointer: SignedPointer, size: int = 8) -> None:
        self.checks += 1
        entry = self._authenticate(pointer)
        if not entry.alive:
            raise PACSanFault(
                f"use-after-free through allocation id {pointer.oid} "
                f"({entry.base:#x})"
            )
        if not (entry.base <= pointer.address
                and pointer.address + size <= entry.base + entry.size):
            raise PACSanFault(
                f"out-of-bounds access at {pointer.address:#x}: object is "
                f"[{entry.base:#x}, {entry.base + entry.size:#x})"
            )

    def load(self, pointer: SignedPointer, size: int = 8) -> int:
        self.check(pointer, size)
        return int.from_bytes(self.memory.read_bytes(pointer.address, size), "little")

    def store(self, pointer: SignedPointer, value: int, size: int = 8) -> None:
        self.check(pointer, size)
        self.memory.write_bytes(
            pointer.address,
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"),
        )

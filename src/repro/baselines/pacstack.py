"""A functional PACStack-style authenticated return-address chain.

PACStack (see PAPERS.md) protects *only* the call stack: each pushed
return address is bound to the previous authentication token,

    aret_i = PAC_ia(ret_i, aret_{i-1}),

forming a chain rooted in a per-thread secret, so an attacker who
overwrites any saved return address (or replays an old one out of
order) fails authentication at the matching return.  The heap is left
completely unprotected — the mirror image of AOS, which is exactly why
it earns a row in the cross-paper matrix: it covers the return path AOS
ignores and nothing else.
"""

from __future__ import annotations

from typing import List

from ..crypto.pac import PACGenerator, PAKeys


class PACStackFault(Exception):
    """Return-address chain authentication failed."""


class PACStackRuntime:
    """The authenticated call-stack chain (no heap involvement)."""

    #: Chain root: stands in for the per-thread boot-time secret.
    ROOT_TOKEN = 0x0A05

    def __init__(self, pac_bits: int = 16, pac_mode: str = "fast") -> None:
        self.generator = PACGenerator(keys=PAKeys(), pac_bits=pac_bits, mode=pac_mode)
        #: Mutable (return_address, token) frames, oldest first.
        self._frames: List[List[int]] = []
        self.auth_failures = 0

    def _token(self, return_address: int, previous: int) -> int:
        return self.generator.compute(return_address, previous, key_name="ia")

    @property
    def depth(self) -> int:
        return len(self._frames)

    def call(self, return_address: int) -> None:
        previous = self._frames[-1][1] if self._frames else self.ROOT_TOKEN
        self._frames.append([return_address, self._token(return_address, previous)])

    def smash_return(self, value: int) -> None:
        """Attacker overwrite of the topmost saved return address; the
        chained token cannot be recomputed without the key."""
        if self._frames:
            frame = self._frames[-1]
            frame[0] = value if value != frame[0] else value ^ 0x10

    def ret(self) -> int:
        if not self._frames:
            raise PACStackFault("return-address chain underflow")
        return_address, token = self._frames.pop()
        previous = self._frames[-1][1] if self._frames else self.ROOT_TOKEN
        if token != self._token(return_address, previous):
            self.auth_failures += 1
            raise PACStackFault(
                f"return address {return_address:#x} fails chain "
                f"authentication at depth {len(self._frames)}"
            )
        return return_address

"""A functional Arm-MTE/SPARC-ADI-style memory-tagging model (§X).

Memory tagging assigns a small lock tag (4 bits in MTE/ADI) to each
16-byte memory granule and places a matching key tag in the pointer's
upper bits; a dereference traps when the tags disagree.  The paper's
related-work comparison (§X) highlights the consequence of the tiny tag:

    "Given the probability of bug detection, specifically 94 % with
     4-bit tags, an attacker may bypass the protection with a
     sufficient number of attempts."

This model implements tag assignment on allocation, tag checks on every
access, re-tagging on free (temporal protection, also probabilistic), and
exposes the detection probability analytically and empirically so the
tag-size trade-off against AOS's 16-bit PACs can be reproduced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..memory.allocator import HeapAllocator
from ..memory.layout import AddressSpaceLayout, DEFAULT_LAYOUT
from ..memory.memory import SparseMemory

#: MTE/ADI granule size.
GRANULE = 16


class MTEFault(Exception):
    """A tag-check fault (pointer tag != memory tag)."""


@dataclass(frozen=True)
class TaggedPointer:
    """A pointer with its key tag in the (modelled) upper bits."""

    address: int
    tag: int

    def offset(self, delta: int) -> "TaggedPointer":
        return TaggedPointer(address=self.address + delta, tag=self.tag)

    def __int__(self) -> int:
        return self.address


class MTERuntime:
    """A memory-tagging protected heap with ``tag_bits``-wide lock tags."""

    def __init__(
        self,
        tag_bits: int = 4,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        seed: int = 0xAD1,
    ) -> None:
        if not 1 <= tag_bits <= 16:
            raise ValueError("tag width must be 1..16 bits")
        self.tag_bits = tag_bits
        self.tag_space = 1 << tag_bits
        self.memory = SparseMemory()
        self.allocator = HeapAllocator(self.memory, layout)
        self._rng = random.Random(seed)
        #: granule index -> lock tag.
        self._tags: Dict[int, int] = {}
        self.checks = 0
        self.tag_faults = 0

    # ------------------------------------------------------------------ tags

    def _granules(self, address: int, size: int):
        start = address // GRANULE
        end = (address + max(size, 1) - 1) // GRANULE
        return range(start, end + 1)

    def _random_tag(self, exclude: int = -1) -> int:
        """MTE picks a random non-matching tag on (re-)colouring."""
        while True:
            tag = self._rng.randrange(self.tag_space)
            if tag != exclude:
                return tag

    def tag_of(self, address: int) -> int:
        return self._tags.get(address // GRANULE, 0)

    # ------------------------------------------------------------------ heap

    def malloc(self, size: int) -> TaggedPointer:
        address = self.allocator.malloc(size)
        tag = self._random_tag()
        for granule in self._granules(address, size):
            self._tags[granule] = tag
        return TaggedPointer(address=address, tag=tag)

    def free(self, pointer: TaggedPointer) -> TaggedPointer:
        """Free and *re-colour* the granules so stale pointers (usually)
        trap — temporal protection with the same 1-in-2^tag_bits escape."""
        self.check(pointer)
        size = self.allocator.allocated_size(pointer.address)
        self.allocator.free(pointer.address)
        for granule in self._granules(pointer.address, size):
            self._tags[granule] = self._random_tag(exclude=pointer.tag)
        return pointer  # dangling pointer keeps its stale key tag

    # ---------------------------------------------------------------- checks

    def check(self, pointer: TaggedPointer, size: int = 8) -> None:
        self.checks += 1
        for granule in self._granules(pointer.address, size):
            if self._tags.get(granule, 0) != pointer.tag:
                self.tag_faults += 1
                raise MTEFault(
                    f"tag check fault at {pointer.address:#x}: pointer tag "
                    f"{pointer.tag:#x} != memory tag {self._tags.get(granule, 0):#x}"
                )

    def load(self, pointer: TaggedPointer, size: int = 8) -> int:
        self.check(pointer, size)
        return int.from_bytes(self.memory.read_bytes(pointer.address, size), "little")

    def store(self, pointer: TaggedPointer, value: int, size: int = 8) -> None:
        self.check(pointer, size)
        self.memory.write_bytes(
            pointer.address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        )

    # -------------------------------------------------------------- analysis

    def detection_probability(self) -> float:
        """P(an adjacent-object violation is caught) = 1 - 2^-tag_bits.

        4-bit tags give 93.75 % — the "94 %" of §X.
        """
        return 1.0 - 1.0 / self.tag_space

    def expected_attempts_for_bypass(self) -> float:
        """Expected attack attempts until a tag collision slips through."""
        return float(self.tag_space)

"""Filesystem heartbeat board shared between supervisor and pool workers.

``ProcessPoolExecutor`` gives the parent no view of *which* submitted task
a worker is currently executing, so hang detection needs a side channel.
Each worker wrapper stamps ``<board>/<task digest>.start`` when it picks a
task up and refreshes ``.beat`` from a daemon thread while the task runs;
the parent polls those files to distinguish "queued behind a busy pool"
(no start stamp — not charged against the deadline) from "started and
silent for too long" (hung or dead).

Files carry ``time.time()`` as text.  Board and workers always share a
host (process pools are per-machine), so comparing those stamps against
the parent's clock is sound.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from pathlib import Path
from typing import Optional


def _digest(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()[:24]


class HeartbeatBoard:
    """One directory of start/beat stamps, keyed by task key digest."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ worker side

    def _stamp(self, key: str, suffix: str) -> None:
        path = self.root / f"{_digest(key)}.{suffix}"
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(repr(time.time()))
            os.replace(tmp, path)
        except OSError:
            pass  # a lost beat only makes the parent *more* suspicious

    def start_task(self, key: str) -> None:
        self._stamp(key, "start")
        self._stamp(key, "beat")

    def beat(self, key: str) -> None:
        self._stamp(key, "beat")

    def finish_task(self, key: str) -> None:
        for suffix in ("start", "beat"):
            try:
                (self.root / f"{_digest(key)}.{suffix}").unlink()
            except OSError:
                pass

    # ------------------------------------------------------------ parent side

    def _read(self, key: str, suffix: str) -> Optional[float]:
        path = self.root / f"{_digest(key)}.{suffix}"
        try:
            return float(path.read_text())
        except (OSError, ValueError):
            return None

    def started_at(self, key: str) -> Optional[float]:
        """Wall-clock time the task was picked up, or None if still queued."""
        return self._read(key, "start")

    def last_beat(self, key: str) -> Optional[float]:
        return self._read(key, "beat")

    def clear(self, key: str) -> None:
        self.finish_task(key)

    # ------------------------------------------------------------- hygiene

    def sweep_stale(self, max_age_s: float) -> int:
        """Delete stamp files older than ``max_age_s``; returns the count.

        A SIGKILLed run leaves its last stamps behind; a later run sharing
        the board (persistent queue directories do) must not mistake those
        for live workers *or* let them accumulate forever.  Only files with
        the board's stamp suffixes are touched.
        """
        cutoff = time.time() - max_age_s
        removed = 0
        try:
            entries = list(self.root.iterdir())
        except OSError:
            return 0
        for path in entries:
            if path.suffix not in (".start", ".beat"):
                continue
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # raced with a concurrent finish_task
        return removed


def sweep_stale_boards(
    parent=None, max_age_s: float = 3600.0, prefix: str = "repro-supervise-"
) -> int:
    """Remove abandoned supervisor board directories; returns the count.

    Supervisors create their boards via ``tempfile.mkdtemp(prefix=...)``
    and remove them on clean exit; a SIGKILLed run leaks the directory.
    A board whose *newest* stamp is older than ``max_age_s`` (or which is
    empty) cannot belong to a live run, so supervisor and queue-service
    startup call this to keep the temp directory honest.
    """
    import shutil
    import tempfile

    root = Path(parent) if parent is not None else Path(tempfile.gettempdir())
    cutoff = time.time() - max_age_s
    removed = 0
    try:
        candidates = [p for p in root.iterdir() if p.name.startswith(prefix)]
    except OSError:
        return 0
    for board in candidates:
        if not board.is_dir():
            continue
        try:
            newest = max(
                (f.stat().st_mtime for f in board.iterdir()), default=0.0
            )
        except OSError:
            continue
        if newest < cutoff:
            shutil.rmtree(board, ignore_errors=True)
            removed += 1
    return removed


def beat_forever(
    board: HeartbeatBoard, key: str, interval_s: float, stop: threading.Event
) -> None:
    """Daemon-thread body refreshing ``key``'s beat until ``stop`` is set."""
    while not stop.wait(interval_s):
        board.beat(key)


def start_beat_thread(
    board: HeartbeatBoard, key: str, interval_s: float
) -> threading.Event:
    """Stamp ``key`` as started and refresh its beat from a daemon thread.

    Returns the stop event; the caller sets it (and calls
    :meth:`HeartbeatBoard.finish_task`) when the task body returns.
    """
    board.start_task(key)
    stop = threading.Event()
    thread = threading.Thread(
        target=beat_forever,
        args=(board, key, interval_s, stop),
        name=f"heartbeat:{_digest(key)[:8]}",
        daemon=True,
    )
    thread.start()
    return stop

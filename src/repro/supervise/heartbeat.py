"""Filesystem heartbeat board shared between supervisor and pool workers.

``ProcessPoolExecutor`` gives the parent no view of *which* submitted task
a worker is currently executing, so hang detection needs a side channel.
Each worker wrapper stamps ``<board>/<task digest>.start`` when it picks a
task up and refreshes ``.beat`` from a daemon thread while the task runs;
the parent polls those files to distinguish "queued behind a busy pool"
(no start stamp — not charged against the deadline) from "started and
silent for too long" (hung or dead).

Files carry ``time.time()`` as text.  Board and workers always share a
host (process pools are per-machine), so comparing those stamps against
the parent's clock is sound.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from pathlib import Path
from typing import Optional


def _digest(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()[:24]


class HeartbeatBoard:
    """One directory of start/beat stamps, keyed by task key digest."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ worker side

    def _stamp(self, key: str, suffix: str) -> None:
        path = self.root / f"{_digest(key)}.{suffix}"
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(repr(time.time()))
            os.replace(tmp, path)
        except OSError:
            pass  # a lost beat only makes the parent *more* suspicious

    def start_task(self, key: str) -> None:
        self._stamp(key, "start")
        self._stamp(key, "beat")

    def beat(self, key: str) -> None:
        self._stamp(key, "beat")

    def finish_task(self, key: str) -> None:
        for suffix in ("start", "beat"):
            try:
                (self.root / f"{_digest(key)}.{suffix}").unlink()
            except OSError:
                pass

    # ------------------------------------------------------------ parent side

    def _read(self, key: str, suffix: str) -> Optional[float]:
        path = self.root / f"{_digest(key)}.{suffix}"
        try:
            return float(path.read_text())
        except (OSError, ValueError):
            return None

    def started_at(self, key: str) -> Optional[float]:
        """Wall-clock time the task was picked up, or None if still queued."""
        return self._read(key, "start")

    def last_beat(self, key: str) -> Optional[float]:
        return self._read(key, "beat")

    def clear(self, key: str) -> None:
        self.finish_task(key)


def beat_forever(
    board: HeartbeatBoard, key: str, interval_s: float, stop: threading.Event
) -> None:
    """Daemon-thread body refreshing ``key``'s beat until ``stop`` is set."""
    while not stop.wait(interval_s):
        board.beat(key)


def start_beat_thread(
    board: HeartbeatBoard, key: str, interval_s: float
) -> threading.Event:
    """Stamp ``key`` as started and refresh its beat from a daemon thread.

    Returns the stop event; the caller sets it (and calls
    :meth:`HeartbeatBoard.finish_task`) when the task body returns.
    """
    board.start_task(key)
    stop = threading.Event()
    thread = threading.Thread(
        target=beat_forever,
        args=(board, key, interval_s, stop),
        name=f"heartbeat:{_digest(key)[:8]}",
        daemon=True,
    )
    thread.start()
    return stop

"""Supervised execution: heartbeats, hang detection, retries, quarantine.

The supervision layer wraps the parallel experiment engine and the fault
campaigns so a hung, crashing or silently-corrupting cell degrades the
run instead of killing it::

    from repro.supervise import Supervisor, SupervisorConfig, Task

    supervisor = Supervisor(SupervisorConfig(jobs=4, deadline_s=30.0))
    results, report = supervisor.run(worker_fn, tasks)
    print(report.format())

``InvariantOracle`` is the ``--paranoid`` half: it audits simulator state
(MCQ FSMs, HBT occupancy, BWB hints, signed-pointer round-trips, shadow
bounds) after a cell and turns silent corruption into a first-class
failure.
"""

from .heartbeat import HeartbeatBoard, sweep_stale_boards
from .oracle import InvariantOracle, Violation
from .policy import LADDER, ExecutionLevel, RetryPolicy, SupervisorConfig
from .signals import trap_signals
from .supervisor import (
    AttemptRecord,
    SupervisionReport,
    Supervisor,
    Task,
    WorkerError,
)

__all__ = [
    "AttemptRecord",
    "ExecutionLevel",
    "HeartbeatBoard",
    "InvariantOracle",
    "LADDER",
    "RetryPolicy",
    "SupervisionReport",
    "Supervisor",
    "SupervisorConfig",
    "Task",
    "Violation",
    "WorkerError",
    "sweep_stale_boards",
    "trap_signals",
]

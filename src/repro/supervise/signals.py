"""Graceful SIGINT/SIGTERM handling for long-running CLI commands.

``python -m repro faultinject``/``all`` can run for minutes; killing them
used to print a bare ``KeyboardInterrupt`` traceback (or, under SIGTERM,
nothing at all) even though every completed cell was already durable in
the checkpoint/artifact cache.  :func:`trap_signals` converts SIGTERM
into the same :class:`KeyboardInterrupt` control flow SIGINT produces, so
one ``except KeyboardInterrupt`` in the CLI can flush state and print a
resume hint for both.

Installation is best-effort: outside the main thread (or on platforms
without the signals) the context manager is a no-op, which is safe —
the default behaviour is simply unchanged there.
"""

from __future__ import annotations

import contextlib
import signal
from typing import Iterator


def _raise_keyboard_interrupt(signum, frame) -> None:
    raise KeyboardInterrupt(f"signal {signum}")


@contextlib.contextmanager
def trap_signals() -> Iterator[None]:
    """Route SIGTERM through ``KeyboardInterrupt``; restore on exit."""
    previous = {}
    for name in ("SIGTERM",):
        signum = getattr(signal, name, None)
        if signum is None:
            continue
        try:
            previous[signum] = signal.signal(signum, _raise_keyboard_interrupt)
        except (ValueError, OSError):
            pass  # not the main thread / unsupported: leave defaults
    try:
        yield
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass

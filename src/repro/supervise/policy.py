"""Supervision policies: retry/backoff, degradation ladder, deadlines.

The knobs here are deliberately plain frozen dataclasses so a
:class:`~repro.supervise.supervisor.Supervisor` run is a pure function of
(policy, tasks, worker): the backoff schedule derives its jitter from a
seeded hash of ``(seed, task key, attempt)``, never from the wall clock or
a shared RNG, so a rerun of the same sweep retries at the same simulated
offsets and the :class:`~repro.supervise.supervisor.SupervisionReport`
is reproducible modulo elapsed times.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

from ..errors import SupervisionError


class ExecutionLevel(Enum):
    """The degradation ladder, most parallel first.

    ========== =========================================================
    pool        persistent ``ProcessPoolExecutor`` with heartbeat files;
                a hang tears the whole pool down (workers are reusable,
                so one wedged worker poisons sibling submissions)
    fresh-pool  one short-lived ``multiprocessing.Process`` per task:
                slower, but a hang is terminated precisely without
                collateral requeues
    serial      in-process execution; only cooperative deadlines apply,
                but no pool machinery is left to fail
    ========== =========================================================
    """

    POOL = "pool"
    FRESH_POOL = "fresh-pool"
    SERIAL = "serial"


#: Ladder order used when degrading.
LADDER = (ExecutionLevel.POOL, ExecutionLevel.FRESH_POOL, ExecutionLevel.SERIAL)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter."""

    #: Retries after the first attempt (0 = fail fast).
    max_retries: int = 2
    #: Delay before the first retry.
    backoff_base_s: float = 0.05
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Ceiling on any single delay.
    backoff_cap_s: float = 2.0
    #: Relative jitter amplitude: each delay lands in ``raw * [1-j, 1+j]``.
    jitter: float = 0.25
    #: Seed for the jitter hash, so reruns back off identically.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SupervisionError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise SupervisionError("backoff delays must be >= 0")
        if not 0 <= self.jitter < 1:
            raise SupervisionError("jitter must be in [0, 1)")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retrying ``key`` after its ``attempt``-th failure.

        Deterministic: the jitter comes from a hash of (seed, key, attempt),
        so two runs of the same sweep produce the same schedule.
        """
        if attempt < 1:
            raise SupervisionError("delay() is defined for attempt >= 1")
        raw = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_cap_s,
        )
        if raw == 0 or self.jitter == 0:
            return raw
        digest = hashlib.sha256(f"{self.seed}:{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0, 1)
        jittered = raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)
        # The cap is a hard ceiling: positive jitter on an at-cap delay
        # must not push past it (a long chaos campaign would otherwise
        # accumulate unbounded extra sleep across its retries).
        return min(jittered, self.backoff_cap_s)


@dataclass(frozen=True)
class SupervisorConfig:
    """Everything a :class:`Supervisor` needs besides the tasks."""

    #: Worker processes (values < 1 mean "decided by the caller").
    jobs: int = 1
    #: Per-task wall-clock deadline; None disables hang detection.
    deadline_s: float = 60.0
    #: How often a pool worker refreshes its heartbeat file.
    heartbeat_interval_s: float = 0.2
    #: A started task whose heartbeat is older than this is presumed dead
    #: even if its future is still pending (beat thread killed, worker
    #: wedged in uninterruptible state).
    heartbeat_timeout_s: float = 15.0
    #: Parent-side polling granularity while waiting on workers.
    poll_interval_s: float = 0.05
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Pool-level failures (hangs, broken pools, worker deaths) tolerated
    #: at one ladder level before degrading to the next.
    strikes_per_level: int = 2
    start_level: ExecutionLevel = ExecutionLevel.POOL

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise SupervisionError("deadline_s must be positive or None")
        if self.heartbeat_interval_s <= 0 or self.poll_interval_s <= 0:
            raise SupervisionError("heartbeat/poll intervals must be positive")
        if self.strikes_per_level < 1:
            raise SupervisionError("strikes_per_level must be >= 1")

    def effective_jobs(self, fallback: int = 1) -> int:
        return self.jobs if self.jobs >= 1 else max(1, fallback)

"""The supervised execution engine: heartbeats, retries, degradation.

:class:`Supervisor` runs a batch of independent, picklable tasks through a
module-level worker function and refuses to let any single task take the
run down.  Failures are handled in three layers:

1. **Per-task retry** — a task that raises, hangs past its wall-clock
   deadline, or loses its worker process is retried up to
   :attr:`~repro.supervise.policy.RetryPolicy.max_retries` times with
   exponential backoff and deterministic (seeded) jitter.
2. **Quarantine** — a task that fails every attempt is recorded as
   quarantined with its failure history instead of failing the run; the
   caller persists the quarantine (e.g. in a campaign checkpoint) so a
   resumed sweep skips the poison cell.
3. **Degradation ladder** — repeated *pool-level* failures (hangs that
   tear the pool down, broken pools, silently dying workers) degrade the
   execution level: persistent process pool -> one fresh process per task
   -> in-process serial.  Each transition is recorded as a fallback.

Everything that happened is returned in a :class:`SupervisionReport`:
one :class:`AttemptRecord` per attempt, the quarantine roster, the
fallback history, and the accumulated backoff — enough to account for
every retry/fallback/quarantine after the fact.

Workers must be module-level functions of one picklable payload argument
(the same constraint the plain ``ProcessPoolExecutor`` engine imposes).
Worker *results* are returned to the parent as-is; a streaming
``on_result`` callback lets callers checkpoint each success immediately,
so a supervised run that is later killed resumes like a serial one.
"""

from __future__ import annotations

import shutil
import tempfile
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError, SupervisionError
from .heartbeat import HeartbeatBoard, start_beat_thread, sweep_stale_boards
from .policy import LADDER, ExecutionLevel, SupervisorConfig

#: Cap on stored failure detail, so a worker traceback cannot bloat
#: reports/checkpoints.
_DETAIL_LIMIT = 600


@dataclass(frozen=True)
class Task:
    """One unit of supervised work: a stable key plus a picklable payload."""

    key: str
    payload: Any


class WorkerError(ReproError):
    """A task body raised inside a worker process.

    Wraps the original exception so the parent learns *which* task failed
    and what it raised even across the pickling boundary (the original
    exception type may not survive a round-trip; this one always does).
    """

    def __init__(self, key: str, kind: str, message: str) -> None:
        super().__init__(f"task {key!r} failed: {kind}: {message}")
        self.key = key
        self.kind = kind
        self.message = message

    def __reduce__(self):
        return (type(self), (self.key, self.kind, self.message))


@dataclass
class AttemptRecord:
    """One attempt of one task, at one ladder level."""

    key: str
    attempt: int  # 1-based
    level: str  # ExecutionLevel value
    outcome: str  # "ok" | "error" | "hang" | "crash"
    elapsed: float = 0.0
    detail: str = ""

    def to_payload(self) -> dict:
        return dict(self.__dict__)


@dataclass
class SupervisionReport:
    """Structured account of everything a supervised run did."""

    attempts: List[AttemptRecord] = field(default_factory=list)
    #: key -> human-readable reason (terminal failure history).
    quarantined: Dict[str, str] = field(default_factory=dict)
    #: Ladder transitions, e.g. ``"pool -> fresh-pool: 2 pool failures ..."``.
    fallbacks: List[str] = field(default_factory=list)
    #: Keys skipped because an earlier run already quarantined them.
    skipped_quarantined: List[str] = field(default_factory=list)
    #: Total deterministic backoff slept before retries.
    backoff_s: float = 0.0
    final_level: str = ExecutionLevel.POOL.value

    def completed_keys(self) -> List[str]:
        return [a.key for a in self.attempts if a.outcome == "ok"]

    @property
    def retries(self) -> int:
        return sum(1 for a in self.attempts if a.attempt > 1)

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.attempts:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    def attempts_for(self, key: str) -> List[AttemptRecord]:
        """Every attempt of one task, in execution order — the per-cell
        audit trail a chaos campaign points at when a cell needed retries."""
        return [a for a in self.attempts if a.key == key]

    def attempt_outcomes(self) -> Dict[str, List[str]]:
        """key -> outcome sequence (e.g. ``["hang", "ok"]``), so retry
        behaviour is auditable without walking the raw attempt list."""
        outcomes: Dict[str, List[str]] = {}
        for record in self.attempts:
            outcomes.setdefault(record.key, []).append(record.outcome)
        return outcomes

    def accounts_for(self, keys: Sequence[str]) -> bool:
        """True when every key is either completed or quarantined."""
        done = set(self.completed_keys()) | set(self.quarantined)
        done.update(self.skipped_quarantined)
        return all(key in done for key in keys)

    def to_payload(self) -> dict:
        return {
            "attempts": [a.to_payload() for a in self.attempts],
            "quarantined": dict(self.quarantined),
            "fallbacks": list(self.fallbacks),
            "skipped_quarantined": list(self.skipped_quarantined),
            "backoff_s": self.backoff_s,
            "final_level": self.final_level,
        }

    def format(self) -> str:
        counts = self.outcome_counts()
        lines = [
            "Supervision report",
            f"  attempts: {len(self.attempts)}  "
            + "  ".join(f"{k}: {v}" for k, v in sorted(counts.items())),
            f"  retries: {self.retries}  "
            f"backoff slept: {self.backoff_s:.2f}s  "
            f"final level: {self.final_level}",
        ]
        for transition in self.fallbacks:
            lines.append(f"  fallback: {transition}")
        for key, reason in self.quarantined.items():
            lines.append(f"  quarantined: {key} ({reason})")
        if self.skipped_quarantined:
            lines.append(
                "  skipped (quarantined in an earlier run): "
                + ", ".join(self.skipped_quarantined)
            )
        return "\n".join(lines)


# ------------------------------------------------------------------ workers


def _pool_worker(args: Tuple[str, str, Callable, Any, float]) -> Any:
    """Heartbeat-wrapped pool worker body (module-level, picklable)."""
    board_root, key, worker, payload, interval_s = args
    board = HeartbeatBoard(board_root)
    stop = start_beat_thread(board, key, interval_s)
    try:
        try:
            return worker(payload)
        except Exception as exc:
            raise WorkerError(
                key, type(exc).__name__, f"{exc}\n{traceback.format_exc()}"
            ) from None
    finally:
        stop.set()
        board.finish_task(key)


def _fresh_worker(conn, worker, key, payload) -> None:
    """Body of a one-shot fresh-pool process; ships (status, value) back."""
    try:
        try:
            value = worker(payload)
        except Exception as exc:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok", value))
    finally:
        conn.close()


# --------------------------------------------------------------- internals


@dataclass
class _Pending:
    """One task waiting to (re)run."""

    task: Task
    attempt: int = 1  # attempt number this entry will consume
    not_before: float = 0.0  # monotonic time gating the retry backoff


class _Degrade(Exception):
    """Internal: the current level gave up; carries the leftover queue."""

    def __init__(self, leftover: List[_Pending], reason: str) -> None:
        super().__init__(reason)
        self.leftover = leftover
        self.reason = reason


def _clip(text: str) -> str:
    text = text.strip()
    return text if len(text) <= _DETAIL_LIMIT else text[: _DETAIL_LIMIT] + "..."


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: cancel queued work, kill live workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(timeout=1.0)
        except Exception:
            pass


# -------------------------------------------------------------- supervisor


class Supervisor:
    """Runs tasks under the configured retry/deadline/degradation policy."""

    def __init__(self, config: SupervisorConfig = SupervisorConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------- plumbing

    def _fail(
        self,
        pend: _Pending,
        level: ExecutionLevel,
        outcome: str,
        elapsed: float,
        detail: str,
        report: SupervisionReport,
    ) -> Optional[_Pending]:
        """Charge one failed attempt; returns the retry entry or None
        (quarantined)."""
        key = pend.task.key
        detail = _clip(detail)
        report.attempts.append(
            AttemptRecord(key, pend.attempt, level.value, outcome, elapsed, detail)
        )
        policy = self.config.retry
        if pend.attempt >= policy.max_attempts:
            report.quarantined[key] = (
                f"{outcome} on attempt {pend.attempt}/{policy.max_attempts} "
                f"at level {level.value}: {detail or 'no detail'}"
            )
            return None
        delay = policy.delay(key, pend.attempt)
        report.backoff_s += delay
        return _Pending(pend.task, pend.attempt + 1, time.monotonic() + delay)

    def _ok(
        self,
        pend: _Pending,
        level: ExecutionLevel,
        elapsed: float,
        value: Any,
        results: Dict[str, Any],
        report: SupervisionReport,
        on_result: Optional[Callable[[str, Any], None]],
    ) -> None:
        report.attempts.append(
            AttemptRecord(pend.task.key, pend.attempt, level.value, "ok", elapsed)
        )
        results[pend.task.key] = value
        if on_result is not None:
            on_result(pend.task.key, value)

    @staticmethod
    def _pop_ready(queue: "deque[_Pending]", now: float) -> Optional[_Pending]:
        """Next entry whose backoff has elapsed, preserving queue order."""
        for _ in range(len(queue)):
            if queue[0].not_before <= now:
                return queue.popleft()
            queue.rotate(-1)
        return None

    # ------------------------------------------------------------------ run

    def run(
        self,
        worker: Callable[[Any], Any],
        tasks: Sequence[Task],
        on_result: Optional[Callable[[str, Any], None]] = None,
    ) -> Tuple[Dict[str, Any], SupervisionReport]:
        """Execute ``worker(task.payload)`` for every task, supervised.

        Returns ``({key: result}, report)``.  Quarantined keys are absent
        from the results dict and present in ``report.quarantined``; the
        report accounts for every task either way.
        """
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise SupervisionError("duplicate task keys in supervised batch")
        # Board hygiene: SIGKILLed earlier runs leak their mkdtemp board
        # directories; sweep the clearly-abandoned ones before creating
        # this run's boards so stale stamps never accumulate.
        sweep_stale_boards()
        report = SupervisionReport()
        results: Dict[str, Any] = {}
        queue = deque(_Pending(task) for task in tasks)
        level_index = LADDER.index(self.config.start_level)
        while queue:
            level = LADDER[level_index]
            report.final_level = level.value
            runner = {
                ExecutionLevel.POOL: self._run_pool_level,
                ExecutionLevel.FRESH_POOL: self._run_fresh_level,
                ExecutionLevel.SERIAL: self._run_serial_level,
            }[level]
            try:
                runner(worker, queue, results, report, on_result)
                break  # queue fully resolved at this level
            except _Degrade as degrade:
                next_level = LADDER[level_index + 1]
                report.fallbacks.append(
                    f"{level.value} -> {next_level.value}: {degrade.reason}"
                )
                queue = deque(degrade.leftover)
                level_index += 1
                report.final_level = next_level.value
        return results, report

    # ---------------------------------------------------------- pool level

    def _run_pool_level(
        self,
        worker: Callable,
        queue: "deque[_Pending]",
        results: Dict[str, Any],
        report: SupervisionReport,
        on_result: Optional[Callable],
    ) -> None:
        """Persistent process pool with heartbeat-based hang detection.

        Runs pool *generations*: a hang/broken pool/stale heartbeat kills
        the whole pool (workers are reused across submissions, so a wedged
        worker cannot be excised individually), charges the implicated
        tasks, requeues innocent bystanders uncharged, and — below the
        strike limit — rebuilds a fresh pool at the same level.
        """
        config = self.config
        strikes = 0
        while queue:
            collapse = self._run_pool_generation(
                worker, queue, results, report, on_result
            )
            if collapse is None:
                return
            strikes += 1
            if strikes >= config.strikes_per_level:
                raise _Degrade(
                    list(queue),
                    f"{strikes} pool failure(s), last: {collapse}",
                )

    def _run_pool_generation(
        self,
        worker: Callable,
        queue: "deque[_Pending]",
        results: Dict[str, Any],
        report: SupervisionReport,
        on_result: Optional[Callable],
    ) -> Optional[str]:
        """One pool lifetime.  Returns None when the queue drained, or the
        collapse reason after tearing the pool down (queue then holds the
        requeued survivors)."""
        config = self.config
        level = ExecutionLevel.POOL
        board_dir = tempfile.mkdtemp(prefix="repro-supervise-")
        board = HeartbeatBoard(board_dir)
        pool = ProcessPoolExecutor(
            max_workers=min(config.effective_jobs(), max(1, len(queue)))
        )
        futures: Dict[Any, Tuple[_Pending, float]] = {}
        collapse: Optional[str] = None
        try:
            while queue or futures:
                now = time.monotonic()
                # Submit every ready task (backoff-gated) up front; the pool
                # queues internally, and the board tells us which submitted
                # tasks have actually started.
                while True:
                    pend = self._pop_ready(queue, now)
                    if pend is None:
                        break
                    try:
                        future = pool.submit(
                            _pool_worker,
                            (
                                str(board.root),
                                pend.task.key,
                                worker,
                                pend.task.payload,
                                config.heartbeat_interval_s,
                            ),
                        )
                    except (BrokenProcessPool, RuntimeError):
                        queue.appendleft(pend)
                        collapse = "pool rejected a submission (broken pool)"
                        break
                    futures[future] = (pend, time.time())
                if collapse is not None:
                    break
                if not futures:
                    time.sleep(config.poll_interval_s)
                    continue
                done, _ = futures_wait(
                    list(futures),
                    timeout=config.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    pend, submitted = futures.pop(future)
                    key = pend.task.key
                    started = board.started_at(key)
                    elapsed = time.time() - (started or submitted)
                    board.clear(key)
                    try:
                        value = future.result()
                    except WorkerError as exc:
                        retry = self._fail(
                            pend, level, "error", elapsed, exc.message, report
                        )
                        if retry is not None:
                            queue.append(retry)
                    except BrokenProcessPool:
                        if started is not None:
                            # This task was live inside the dying pool.
                            retry = self._fail(
                                pend,
                                level,
                                "crash",
                                elapsed,
                                "worker process died (broken pool)",
                                report,
                            )
                            if retry is not None:
                                queue.append(retry)
                        else:
                            queue.append(pend)  # bystander: not charged
                        collapse = "worker process died (broken pool)"
                    except Exception as exc:  # cancelled futures, pickling...
                        retry = self._fail(
                            pend,
                            level,
                            "crash",
                            elapsed,
                            f"{type(exc).__name__}: {exc}",
                            report,
                        )
                        if retry is not None:
                            queue.append(retry)
                        collapse = f"pool failure: {type(exc).__name__}"
                    else:
                        self._ok(
                            pend, level, elapsed, value, results, report, on_result
                        )
                if collapse is not None:
                    break
                # Hang / stale-heartbeat scan over still-running futures.
                wall = time.time()
                for future, (pend, submitted) in list(futures.items()):
                    key = pend.task.key
                    started = board.started_at(key)
                    if started is None:
                        continue  # queued behind a busy pool: not charged
                    age = wall - started
                    beat = board.last_beat(key) or started
                    if config.deadline_s is not None and age > config.deadline_s:
                        outcome, why = "hang", (
                            f"no result after {age:.1f}s "
                            f"(deadline {config.deadline_s:.3g}s)"
                        )
                    elif wall - beat > config.heartbeat_timeout_s:
                        outcome, why = "crash", (
                            f"heartbeat stale for {wall - beat:.1f}s "
                            f"(worker presumed dead)"
                        )
                    else:
                        continue
                    futures.pop(future)
                    board.clear(key)
                    retry = self._fail(pend, level, outcome, age, why, report)
                    if retry is not None:
                        queue.append(retry)
                    collapse = why
                if collapse is not None:
                    break
        finally:
            if collapse is not None:
                _terminate_pool(pool)
                # Survivors ride the pool down; requeue them uncharged.
                for pend, _ in futures.values():
                    board.clear(pend.task.key)
                    queue.append(pend)
                futures.clear()
            else:
                pool.shutdown(wait=True)
            shutil.rmtree(board_dir, ignore_errors=True)
        return collapse

    # ---------------------------------------------------- fresh-pool level

    def _run_fresh_level(
        self,
        worker: Callable,
        queue: "deque[_Pending]",
        results: Dict[str, Any],
        report: SupervisionReport,
        on_result: Optional[Callable],
    ) -> None:
        """One short-lived process per task: precise termination, no pool
        state to poison — the middle rung of the ladder."""
        config = self.config
        level = ExecutionLevel.FRESH_POOL
        strikes = 0
        inflight: Dict[str, Tuple[_Pending, Process, Any, float]] = {}

        def _reap(key: str) -> Tuple[_Pending, Process, Any, float]:
            pend, proc, conn, started = inflight.pop(key)
            try:
                conn.close()
            except OSError:
                pass
            proc.join(timeout=2.0)
            return pend, proc, conn, started

        try:
            while queue or inflight:
                now = time.monotonic()
                while len(inflight) < config.effective_jobs():
                    pend = self._pop_ready(queue, now)
                    if pend is None:
                        break
                    parent_conn, child_conn = Pipe(duplex=False)
                    proc = Process(
                        target=_fresh_worker,
                        args=(child_conn, worker, pend.task.key, pend.task.payload),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    inflight[pend.task.key] = (
                        pend,
                        proc,
                        parent_conn,
                        time.monotonic(),
                    )
                if not inflight:
                    time.sleep(config.poll_interval_s)
                    continue
                conns = {job[2]: key for key, job in inflight.items()}
                ready = connection_wait(
                    list(conns), timeout=config.poll_interval_s
                )
                for conn in ready:
                    key = conns[conn]
                    pend, proc, _, started = inflight[key]
                    elapsed = time.monotonic() - started
                    try:
                        status, value = conn.recv()
                    except (EOFError, OSError):
                        status, value = (
                            "crash",
                            f"worker exited (code {proc.exitcode}) "
                            "without reporting a result",
                        )
                    _reap(key)
                    if status == "ok":
                        self._ok(
                            pend, level, elapsed, value, results, report, on_result
                        )
                        continue
                    if status == "crash":
                        strikes += 1
                    retry = self._fail(pend, level, status, elapsed, value, report)
                    if retry is not None:
                        queue.append(retry)
                now = time.monotonic()
                for key, (pend, proc, conn, started) in list(inflight.items()):
                    elapsed = now - started
                    if (
                        config.deadline_s is not None
                        and elapsed > config.deadline_s
                    ):
                        proc.terminate()
                        _reap(key)
                        strikes += 1
                        retry = self._fail(
                            pend,
                            level,
                            "hang",
                            elapsed,
                            f"terminated after {elapsed:.1f}s "
                            f"(deadline {config.deadline_s:.3g}s)",
                            report,
                        )
                        if retry is not None:
                            queue.append(retry)
                    elif not proc.is_alive() and not conn.poll():
                        _reap(key)
                        strikes += 1
                        retry = self._fail(
                            pend,
                            level,
                            "crash",
                            elapsed,
                            f"worker exited silently (code {proc.exitcode})",
                            report,
                        )
                        if retry is not None:
                            queue.append(retry)
                if strikes >= config.strikes_per_level and (queue or inflight):
                    leftover = list(queue)
                    for key in list(inflight):
                        pend, proc, _, _ = inflight[key]
                        proc.terminate()
                        _reap(key)
                        leftover.append(pend)  # bystander: not charged
                    raise _Degrade(
                        leftover, f"{strikes} worker failure(s) at fresh-pool level"
                    )
        finally:
            for key in list(inflight):
                _, proc, _, _ = inflight[key]
                proc.terminate()
                _reap(key)

    # -------------------------------------------------------- serial level

    def _run_serial_level(
        self,
        worker: Callable,
        queue: "deque[_Pending]",
        results: Dict[str, Any],
        report: SupervisionReport,
        on_result: Optional[Callable],
    ) -> None:
        """Last rung: in-process execution.  Only cooperative deadlines
        (e.g. the campaign's own :class:`~repro.faults.campaign.Deadline`)
        can bound a task here, but there is no pool machinery left to
        fail, so errors reduce to plain retry-then-quarantine."""
        level = ExecutionLevel.SERIAL
        while queue:
            pend = self._pop_ready(queue, time.monotonic())
            if pend is None:
                nearest = min(entry.not_before for entry in queue)
                time.sleep(max(0.0, nearest - time.monotonic()))
                continue
            start = time.monotonic()
            try:
                value = worker(pend.task.payload)
            except Exception as exc:
                retry = self._fail(
                    pend,
                    level,
                    "error",
                    time.monotonic() - start,
                    f"{type(exc).__name__}: {exc}",
                    report,
                )
                if retry is not None:
                    queue.append(retry)
                continue
            self._ok(
                pend,
                level,
                time.monotonic() - start,
                value,
                results,
                report,
                on_result,
            )

"""The ``--paranoid`` invariant oracle: cross-check simulator state.

The campaign taxonomy classifies what the *mechanism* reported; it cannot
see simulator state that is silently wrong (the exact failure class the
paper's MCU/HBT machinery exists to catch in hardware, §IV).  This oracle
audits that state directly after a cell:

- **MCQ terminal** — every entry left in the memory check queue must be
  in a terminal FSM state (``DONE``/``FAIL``, Fig. 8); an in-flight entry
  after quiescence means a lost FSM transition.
- **HBT occupancy == live allocations** — each live chunk owns exactly
  one bounds record (§IV-A ``bndstr``/``bndclr`` pairing), so the record
  count must match the allocator's live count, cross-checked against the
  chunk registry itself.
- **HBT well-formedness** — no record may decode to inverted raw bounds,
  and a non-resizing table must not report a stalled migration.
- **BWB hints consistent with HBT geometry** — way hints are performance
  hints (§V-C) but must still point below the current associativity.
- **Signed-pointer round-trip** — every live tracked pointer re-encodes
  to itself from its decoded (address, PAC, AHC) fields, carries the AHC
  Algorithm 1 computes for its (base, size), and is covered by a bounds
  record in the HBT.
- **Shadow cross-check** — a (deterministically sampled) subset of cells
  additionally mirrors the live set into the Watchdog-style
  :class:`~repro.memory.shadow.ShadowMemory` and verifies each HBT record
  against the shadow bounds, catching silently widened/narrowed records.

Violations are plain records; callers decide whether to fold them into a
campaign outcome (:attr:`~repro.faults.campaign.RunOutcome.INVARIANT`) or
raise :class:`~repro.errors.InvariantViolation` (the experiment-engine
path does, via :meth:`InvariantOracle.inspector`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..core.ahc import compute_ahc
from ..core.bounds import RawBounds
from ..core.mcq import MCQState
from ..errors import InvariantViolation

if TYPE_CHECKING:
    from ..core.hbt import HashedBoundsTable
    from ..core.mcu import MemoryCheckUnit
    from ..faults.injector import FaultHarness

#: Terminal Fig. 8 FSM states.
_TERMINAL = (MCQState.DONE, MCQState.FAIL)


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


class InvariantOracle:
    """Paranoid state auditor for harnesses and simulation runs.

    ``shadow_sample=N`` runs the (more expensive) shadow-memory
    cross-check on roughly one in N cells, selected by a deterministic
    hash of the cell's sample token so the same cells are sampled on
    every rerun.  The structural checks always run.
    """

    def __init__(self, shadow_sample: int = 1) -> None:
        self.shadow_sample = max(1, int(shadow_sample))

    # -------------------------------------------------------------- sampling

    def samples_shadow(self, token: str) -> bool:
        if self.shadow_sample <= 1:
            return True
        digest = hashlib.sha256(token.encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.shadow_sample == 0

    # ------------------------------------------------------------ components

    def check_mcq(self, mcu: "MemoryCheckUnit") -> List[Violation]:
        violations = []
        for entry in mcu.mcq:
            if entry.state not in _TERMINAL:
                violations.append(
                    Violation(
                        "mcq-terminal",
                        f"MCQ entry for {entry.address:#x} stuck in "
                        f"{entry.state.name} after quiescence",
                    )
                )
        return violations

    def check_hbt(self, hbt: "HashedBoundsTable") -> List[Violation]:
        violations = []
        for pac, way, slot in hbt.live_slots():
            record = hbt.peek(pac, way, slot)
            if isinstance(record, RawBounds) and record.lower > record.upper:
                violations.append(
                    Violation(
                        "hbt-record",
                        f"inverted raw bounds [{record.lower:#x}, "
                        f"{record.upper:#x}) at ({pac:#x}, {way}, {slot})",
                    )
                )
        if hbt.migration_stalled and not hbt.resizing:
            violations.append(
                Violation(
                    "hbt-resize",
                    "migration reported stalled with no resize in flight",
                )
            )
        return violations

    def check_bwb(self, mcu: "MemoryCheckUnit") -> List[Violation]:
        bwb = mcu.bwb
        if bwb is None:
            return []
        violations = []
        for tag in bwb.tags():
            # peek(), not lookup(): the audit must not perturb the BWB hit
            # statistics or LRU order it is inspecting.
            way = bwb.peek(tag)
            if way is not None and way >= mcu.hbt.ways:
                violations.append(
                    Violation(
                        "bwb-way",
                        f"BWB hint for tag {tag:#x} points at way {way} "
                        f"beyond associativity {mcu.hbt.ways}",
                    )
                )
        return violations

    def check_occupancy(self, harness: "FaultHarness") -> List[Violation]:
        active = harness.allocator.stats.active
        chunks = len(harness.allocator.live_chunks())
        records = harness.hbt.total_records()
        violations = []
        if active != chunks:
            violations.append(
                Violation(
                    "allocator-consistency",
                    f"allocator counts {active} active but registry holds "
                    f"{chunks} live chunks",
                )
            )
        if records != active:
            violations.append(
                Violation(
                    "hbt-occupancy",
                    f"HBT holds {records} bounds records for {active} live "
                    "allocations (bndstr/bndclr pairing broken)",
                )
            )
        return violations

    def check_pointers(self, harness: "FaultHarness") -> List[Violation]:
        layout = harness.layout
        violations = []
        for obj in harness.objects:
            if obj.freed:
                continue
            decoded = layout.decode(obj.pointer)
            if decoded.ahc == 0:
                violations.append(
                    Violation(
                        "pointer-ahc",
                        f"live pointer {obj.pointer:#x} lost its AHC "
                        "(looks unsigned to selective checking)",
                    )
                )
                continue
            expected_ahc = compute_ahc(
                decoded.address, max(1, obj.size), layout.va_bits
            )
            if decoded.ahc != expected_ahc:
                violations.append(
                    Violation(
                        "pointer-ahc",
                        f"pointer {obj.pointer:#x} carries AHC {decoded.ahc}, "
                        f"Algorithm 1 derives {expected_ahc} for "
                        f"({decoded.address:#x}, {obj.size})",
                    )
                )
            resigned = layout.sign(decoded.address, decoded.pac, decoded.ahc)
            if resigned != obj.pointer:
                violations.append(
                    Violation(
                        "pointer-roundtrip",
                        f"pointer {obj.pointer:#x} does not re-encode from "
                        f"its own fields (got {resigned:#x})",
                    )
                )
            if harness.hbt.find_record(decoded.pac, decoded.address) is None:
                violations.append(
                    Violation(
                        "pointer-bounds",
                        f"no HBT record covers live pointer {obj.pointer:#x} "
                        f"(pac {decoded.pac:#x}, addr {decoded.address:#x})",
                    )
                )
        return violations

    def check_shadow(self, harness: "FaultHarness") -> List[Violation]:
        """Mirror the live set into shadow memory, then verify each HBT
        record against the shadow bounds (in the HBT's comparable address
        space, which truncates to 33 bits under compression)."""
        from ..memory.memory import SparseMemory
        from ..memory.shadow import ShadowMemory, ShadowRecord

        shadow = ShadowMemory(SparseMemory())
        hbt = harness.hbt
        layout = harness.layout
        violations = []
        live = [obj for obj in harness.objects if not obj.freed]
        for obj in live:
            shadow.store(
                obj.address,
                ShadowRecord(
                    key=obj.pattern,
                    lock_address=0,
                    lower=obj.address,
                    upper=obj.address + obj.size,
                ),
            )
        for obj in live:
            record, _ = shadow.load(obj.address)
            if record is None:
                continue  # collision at shadow granularity: not HBT's fault
            decoded = layout.decode(obj.pointer)
            coords = hbt.find_record(decoded.pac, decoded.address)
            if coords is None:
                continue  # already reported by check_pointers
            bounds = hbt.peek(decoded.pac, *coords)
            expected_lower = hbt._comparable_lower(record.lower)
            expected_size = record.upper - record.lower
            # ``bndstr`` records the exact (16-aligned base, requested
            # size) pair (§IV-A), so both fields must match the shadow.
            if (
                bounds.lower != expected_lower
                or bounds.upper - bounds.lower != expected_size
            ):
                violations.append(
                    Violation(
                        "shadow-bounds",
                        f"HBT record for object @{obj.address:#x} covers "
                        f"[{bounds.lower:#x}, {bounds.upper:#x}) but shadow "
                        f"oracle says [{record.lower:#x}, {record.upper:#x})",
                    )
                )
        return violations

    # ------------------------------------------------------------- frontends

    def audit_harness(
        self, harness: "FaultHarness", sample_token: str = ""
    ) -> List[Violation]:
        """Full audit of a campaign harness after its probe completed."""
        violations = []
        violations += self.check_mcq(harness.mcu)
        violations += self.check_hbt(harness.hbt)
        violations += self.check_bwb(harness.mcu)
        violations += self.check_occupancy(harness)
        violations += self.check_pointers(harness)
        if self.samples_shadow(sample_token):
            violations += self.check_shadow(harness)
        return violations

    def audit_simulation(
        self, mcu: Optional["MemoryCheckUnit"], hbt: Optional["HashedBoundsTable"]
    ) -> List[Violation]:
        """Structural audit after a timing-simulator run (no harness)."""
        violations = []
        if mcu is not None:
            violations += self.check_mcq(mcu)
            violations += self.check_bwb(mcu)
        if hbt is not None:
            violations += self.check_hbt(hbt)
        return violations

    def inspector(self, label: str):
        """A :meth:`Simulator.run` ``inspect`` hook raising on violations."""

        def _inspect(mcu, hbt) -> None:
            violations = self.audit_simulation(mcu, hbt)
            if violations:
                raise InvariantViolation(
                    f"{label}: {len(violations)} invariant violation(s): "
                    + "; ".join(str(v) for v in violations),
                    violations,
                )

        return _inspect

"""Workload substrate: profiles, trace generation, microbenchmarks, attacks.

The paper evaluates SPEC CPU 2006 with reference inputs on gem5.  We cannot
run SPEC binaries here, so each workload is modelled by a
:class:`~repro.workloads.profiles.WorkloadProfile` that combines

- the paper's own published memory-usage profile (Table II/III: allocation
  and deallocation counts, maximum active chunks),
- the paper's instruction-mix evidence (Fig. 16: signed/unsigned load and
  store fractions, bndstr/bndclr and pac* rates), and
- qualitative behaviour the paper calls out per workload (gcc's large
  memory footprint, hmmer's >99 % signed accesses and call-heavy code,
  lbm's low memory intensity, pointer-chasing in mcf/omnetpp ...).

:mod:`~repro.workloads.generator` turns a profile into a deterministic
event trace that the compiler passes lower per mechanism.
"""

from .profiles import (
    WorkloadProfile,
    SPEC2006_PROFILES,
    REALWORLD_PROFILES,
    get_profile,
)
from .generator import WorkloadTrace, generate_trace
from .microbench import pac_distribution

__all__ = [
    "WorkloadProfile",
    "SPEC2006_PROFILES",
    "REALWORLD_PROFILES",
    "get_profile",
    "WorkloadTrace",
    "generate_trace",
    "pac_distribution",
]

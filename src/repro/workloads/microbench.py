"""The §VI PAC-collision microbenchmark (Fig. 11).

"We run a microbenchmark that continuously calls malloc() 1 million times
and generates 16-bit PAC values" using the published 64-bit context
``0x477d469dec0b8762`` and 128-bit key
``0x84be85ce9804e94bec2802d4e0a488e9`` (the QARMA-64 test-vector values).
The paper reports the PAC histogram: Avg 16.0, Max 36, Min 3, Stdev 3.99.

We reproduce it with the real QARMA-64 cipher over the address stream a
real allocator would produce for a tight malloc loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..crypto.qarma_batch import Qarma64Batch
from ..memory.layout import DEFAULT_LAYOUT

PAPER_KEY = 0x84BE85CE9804E94BEC2802D4E0A488E9
PAPER_CONTEXT = 0x477D469DEC0B8762


@dataclass
class PACDistribution:
    """Summary of a PAC histogram (the Fig. 11 caption statistics)."""

    counts: np.ndarray
    n_pointers: int
    pac_bits: int

    @property
    def mean(self) -> float:
        return float(self.counts.mean())

    @property
    def max(self) -> int:
        return int(self.counts.max())

    @property
    def min(self) -> int:
        return int(self.counts.min())

    @property
    def stdev(self) -> float:
        return float(self.counts.std())

    def summary(self) -> str:
        return (
            f"Avg:{self.mean:.1f}, Max:{self.max}, Min:{self.min}, "
            f"Stdev: {self.stdev:.2f}"
        )


def malloc_address_stream(n: int, chunk_stride: int = 48) -> np.ndarray:
    """Addresses a tight ``malloc`` loop returns: 16-byte-aligned payloads
    marching up the heap at one chunk per call (header + payload)."""
    base = DEFAULT_LAYOUT.heap_base + 16
    return (base + chunk_stride * np.arange(n, dtype=np.uint64)).astype(np.uint64)


def pac_distribution(
    n: int = 1_000_000,
    pac_bits: int = 16,
    key: int = PAPER_KEY,
    context: int = PAPER_CONTEXT,
    addresses: Optional[np.ndarray] = None,
    batch: int = 1 << 16,
) -> PACDistribution:
    """Reproduce Fig. 11: the PAC histogram of ``n`` malloc'd pointers."""
    cipher = Qarma64Batch(key)
    if addresses is None:
        addresses = malloc_address_stream(n)
    counts = np.zeros(1 << pac_bits, dtype=np.int64)
    for start in range(0, len(addresses), batch):
        pacs = cipher.pacs(addresses[start : start + batch], context, pac_bits)
        counts += np.bincount(pacs.astype(np.int64), minlength=1 << pac_bits)
    return PACDistribution(counts=counts, n_pointers=len(addresses), pac_bits=pac_bits)

"""Synthetic trace generation from workload profiles.

A trace is a deterministic (seeded) stream of *events* — the
mechanism-independent behaviour of the program: compute, branches with
resolved prediction outcomes, function calls, heap allocation and
deallocation, and memory accesses addressed by (object, offset) pairs.
The compiler passes (:mod:`repro.compiler.passes`) lower the same trace
once per protection mechanism, so every mechanism sees the identical
program behaviour — the methodology the paper uses by running the same
SPEC reference inputs under each configuration.

Scaling: simulating a 3-billion-instruction SPEC run is not feasible in
Python, so the trace models a steady-state *window* preceded by a
"preamble" — the set of objects already live when the window starts
(Table II's max-active column, divided by ``scale``).  The compiler pass
shrinks the PAC space by the same factor, preserving the live-objects /
PAC-space ratio that drives HBT occupancy, way iteration and resizing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cpu.branch import GShareBranchPredictor
from ..errors import WorkloadError
from .profiles import WorkloadProfile

#: Hard cap on the preamble live set, to bound host memory/time.
MAX_PREAMBLE_OBJECTS = 400_000

Event = Tuple


@dataclass
class WorkloadTrace:
    """One generated workload window, ready for lowering."""

    profile: WorkloadProfile
    #: Objects live at window start: list of (object id, size).
    preamble: List[Tuple[int, int]]
    #: The event stream (see module docstring for the vocabulary).
    events: List[Event]
    #: Object id -> size for every object (preamble + window allocations).
    object_sizes: Dict[int, int]
    #: Live-set scale divisor applied to the preamble.
    scale: int
    seed: int
    branch_mispredict_rate: float = 0.0

    @property
    def name(self) -> str:
        return self.profile.name

    def __len__(self) -> int:
        return len(self.events)


def _pick_size(rng: random.Random, profile: WorkloadProfile) -> int:
    sizes, weights = zip(*profile.size_classes)
    return rng.choices(sizes, weights=weights, k=1)[0]


def generate_trace(
    profile: WorkloadProfile,
    instructions: int = 100_000,
    seed: int = 1,
    scale: int = 8,
    grow_live_by: int = 0,
) -> WorkloadTrace:
    """Generate a deterministic event trace for ``profile``.

    ``instructions`` is the approximate event count of the window;
    ``scale`` divides the preamble live set (must be a power of two so the
    PAC space can shrink by the same factor).  ``grow_live_by`` lets the
    live set grow beyond its starting size during the window (allocation
    phases; used by the in-window HBT-resize ablation).
    """
    if instructions < 1000:
        raise WorkloadError("window too small to be meaningful (< 1000 events)")
    if scale < 1 or scale & (scale - 1):
        raise WorkloadError("scale must be a power of two")

    rng = random.Random(seed)
    # Synthetic branch outcomes are uncorrelated with global history, so a
    # long history only aliases the table; a short-history gshare behaves
    # like the per-site component of L-TAGE on such streams.
    predictor = GShareBranchPredictor(table_bits=14, history_bits=2)

    # ---- branch sites -----------------------------------------------------
    n_sites = 64
    site_pcs = [0x400000 + 4 * i for i in range(n_sites)]
    site_bias: List[float] = []
    for i in range(n_sites):
        if rng.random() < profile.random_branch_frac:
            site_bias.append(0.5)            # effectively unpredictable
        else:
            site_bias.append(0.97 if rng.random() < 0.7 else 0.03)

    # Warm the predictor so the window measures steady-state behaviour,
    # not cold-start training (the paper fast-forwards before measuring).
    for _ in range(4000):
        site = rng.randrange(n_sites)
        predictor.predict_and_update(site_pcs[site], rng.random() < site_bias[site])
    warm_pred = predictor.predictions
    warm_misp = predictor.mispredictions

    # ---- preamble live set --------------------------------------------------
    n_preamble = min(profile.initial_live // scale, MAX_PREAMBLE_OBJECTS)
    n_preamble = max(n_preamble, min(profile.initial_live, 4))
    object_sizes: Dict[int, int] = {}
    preamble: List[Tuple[int, int]] = []
    next_obj = 0
    for _ in range(n_preamble):
        size = _pick_size(rng, profile)
        object_sizes[next_obj] = size
        preamble.append((next_obj, size))
        next_obj += 1

    live: List[int] = [oid for oid, _ in preamble]
    live_pos: Dict[int, int] = {oid: i for i, oid in enumerate(live)}
    window_allocated: List[int] = []  # FIFO of window-allocated ids
    window_head = 0
    freed: set = set()
    seq_cursor: Dict[int, int] = {}

    def remove_live(oid: int) -> None:
        """O(1) swap-remove from the live list."""
        pos = live_pos.pop(oid)
        last = live.pop()
        if last != oid:
            live[pos] = last
            live_pos[last] = pos

    events: List[Event] = []
    call_depth = 0

    p_mem = profile.mem_frac
    p_branch = p_mem + profile.branch_frac
    p_falu = p_branch + profile.falu_frac
    p_malloc = profile.mallocs_per_kinst / 1000.0
    p_call = profile.call_rate / 1000.0
    p_ptr_arith = profile.ptr_arith_rate / 1000.0
    target_live = len(live) + grow_live_by

    # The hot working set is a random (but fixed) subset of the live
    # objects — deliberately uncorrelated with allocation age, since age
    # determines which HBT way an object's bounds landed in.
    hot_n = max(1, int(len(live) * profile.hot_fraction)) if live else 1
    hot_pool = rng.sample(live, min(hot_n, len(live))) if live else []
    current_obj: Optional[int] = None

    def pick_object() -> int:
        nonlocal current_obj
        # Burst locality: loops iterate over one object at a time, so most
        # accesses repeat the previous object (drives the Fig. 17 BWB hits).
        if (
            current_obj is not None
            and current_obj not in freed
            and rng.random() < profile.burst_prob
        ):
            return current_obj
        if profile.hot_access_prob > rng.random() and hot_pool:
            candidate = hot_pool[rng.randrange(len(hot_pool))]
            if candidate not in freed:
                current_obj = candidate
                return current_obj
        current_obj = live[rng.randrange(len(live))]
        return current_obj

    def pick_offset(obj: int) -> int:
        size = object_sizes[obj]
        span = max(size - 8, 0)
        if span == 0:
            return 0
        if rng.random() < profile.seq_frac:
            cursor = seq_cursor.get(obj, 0)
            seq_cursor[obj] = (cursor + 8) % (span + 1)
            return cursor
        return rng.randrange(0, span + 1, 8)

    for _ in range(instructions):
        r = rng.random()

        # Low-rate events piggyback on the main draw so event count ~ insts.
        if rng.random() < p_malloc and live:
            size = _pick_size(rng, profile)
            object_sizes[next_obj] = size
            events.append(("m", next_obj, size))
            live.append(next_obj)
            live_pos[next_obj] = len(live) - 1
            window_allocated.append(next_obj)
            # Programs touch fresh allocations immediately (initialisation)
            # — the pattern that makes bounds forwarding effective (§V-F2).
            current_obj = next_obj
            next_obj += 1
            # Steady state: free an object once above the target.  The
            # victim's age follows the profile's lifetime skew: recent
            # allocations (tcache churn) vs the oldest window objects.
            if len(live) > target_live and len(live) > 1:
                victim: Optional[int] = None
                if rng.random() < profile.free_recency:
                    # LIFO-ish: free a recently allocated object — but not
                    # the one just created, which the program is about to
                    # initialise and use (allocate -> use briefly -> free).
                    for back in range(2, min(9, len(window_allocated)) + 1):
                        candidate = window_allocated[-back]
                        if candidate not in freed:
                            victim = candidate
                            break
                elif window_head < len(window_allocated):
                    # FIFO: free the oldest window allocation still live.
                    while window_head < len(window_allocated):
                        candidate = window_allocated[window_head]
                        window_head += 1
                        if candidate not in freed:
                            victim = candidate
                            break
                if victim is None:
                    victim = live[rng.randrange(len(live))]
                if victim is not None and len(live) > 1 and victim in live_pos:
                    remove_live(victim)
                    freed.add(victim)
                    events.append(("f", victim))
            continue

        if rng.random() < p_call:
            if call_depth > 0 and rng.random() < 0.5:
                events.append(("ret",))
                call_depth -= 1
            else:
                events.append(("call",))
                call_depth += 1
            continue

        if rng.random() < p_ptr_arith:
            events.append(("pa",))
            continue

        if r < p_mem:
            is_store = rng.random() < profile.store_ratio
            if rng.random() < profile.heap_frac and live:
                obj = pick_object()
                offset = pick_offset(obj)
                is_ptr = rng.random() < profile.ptr_frac
                if is_store:
                    events.append(("st", obj, offset, is_ptr))
                else:
                    chase = rng.random() < profile.chase_frac
                    events.append(("ld", obj, offset, is_ptr, chase))
            else:
                kind = 0 if rng.random() < 0.8 else 1  # stack vs globals
                offset = (
                    rng.randrange(0, 4096, 8)
                    if kind == 0
                    else rng.randrange(0, 262144, 8)
                )
                events.append(("ust" if is_store else "uld", kind, offset))
        elif r < p_branch:
            site = rng.randrange(n_sites)
            taken = rng.random() < site_bias[site]
            mispredicted = predictor.predict_and_update(site_pcs[site], taken)
            events.append(("br", mispredicted))
        elif r < p_falu:
            events.append(("falu",))
        else:
            events.append(("alu",))

    window_predictions = predictor.predictions - warm_pred
    window_mispredictions = predictor.mispredictions - warm_misp
    return WorkloadTrace(
        profile=profile,
        preamble=preamble,
        events=events,
        object_sizes=object_sizes,
        scale=scale,
        seed=seed,
        branch_mispredict_rate=(
            window_mispredictions / window_predictions if window_predictions else 0.0
        ),
    )

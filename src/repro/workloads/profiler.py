"""A Valgrind ``--trace-malloc`` analogue for generated traces (§VI).

The paper gathers its Table II/III memory-usage profiles with Valgrind.
This profiler measures the same quantities — allocation/deallocation
counts, the maximum number of simultaneously active chunks, and byte
volumes — from a :class:`~repro.workloads.generator.WorkloadTrace`, so
the synthetic windows can be validated against the published profiles
they were calibrated from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .generator import WorkloadTrace


@dataclass(frozen=True)
class MeasuredProfile:
    """Table II-style measurements of one trace (preamble + window)."""

    name: str
    max_active: int
    allocations: int
    deallocations: int
    bytes_allocated: int
    events: int

    @property
    def alloc_dealloc_balance(self) -> float:
        """Deallocations per allocation (~1.0 in steady state)."""
        if self.allocations == 0:
            return 0.0
        return self.deallocations / self.allocations


def profile_trace(trace: WorkloadTrace) -> MeasuredProfile:
    """Measure a trace the way Valgrind's --trace-malloc would."""
    active = len(trace.preamble)
    max_active = active
    allocations = active  # the preamble objects were allocated pre-window
    deallocations = 0
    bytes_allocated = sum(size for _, size in trace.preamble)

    for event in trace.events:
        tag = event[0]
        if tag == "m":
            allocations += 1
            active += 1
            bytes_allocated += event[2]
            if active > max_active:
                max_active = active
        elif tag == "f":
            deallocations += 1
            active -= 1

    return MeasuredProfile(
        name=trace.name,
        max_active=max_active,
        allocations=allocations,
        deallocations=deallocations,
        bytes_allocated=bytes_allocated,
        events=len(trace.events),
    )


def profile_report(profiles: Dict[str, MeasuredProfile]) -> str:
    """Render measured profiles as a Table II-style text table."""
    header = (
        f"{'name':12s}{'max active':>12s}{'allocs':>10s}{'deallocs':>10s}"
        f"{'MB':>8s}"
    )
    lines = [header, "-" * len(header)]
    for profile in profiles.values():
        lines.append(
            f"{profile.name:12s}{profile.max_active:>12d}"
            f"{profile.allocations:>10d}{profile.deallocations:>10d}"
            f"{profile.bytes_allocated / 1e6:>8.1f}"
        )
    return "\n".join(lines)

"""Workload profiles for the 16 SPEC CPU 2006 and 6 real-world benchmarks.

``table_*`` fields carry the paper's published full-program memory-usage
profiles verbatim (Tables II and III) — they are what the Table II/III
experiments report.  The remaining fields parameterise the synthetic
steady-state window the timing simulator executes; they are calibrated to
the paper's per-workload evidence:

- **Fig. 16** fixes the signed vs unsigned load/store mix (``mem_frac``,
  ``store_ratio``, ``heap_frac``): bzip2/gcc/hmmer/lbm above 80 % signed,
  hmmer above 99 %, sjeng/milc/namd low.
- **Table II** fixes allocation rates and live-set sizes
  (``mallocs_per_kinst`` ~ allocations / 3 B instructions,
  ``initial_live`` ~ max active chunks).
- §IX-A's discussion fixes the qualitative knobs: gcc is memory-intensive
  with a large footprint (worst AOS slowdown), lbm is signed-heavy but not
  memory-intensive, hmmer and omnetpp are call-heavy (PA overhead ~10 %),
  milc/namd/gobmk/astar are misprediction-prone (the back-pressure
  speedup), mcf and omnetpp chase pointers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import WorkloadError

SizeClasses = Tuple[Tuple[int, float], ...]

#: Default object-size mixture (typical allocator bin pressure).
DEFAULT_SIZES: SizeClasses = ((32, 0.45), (96, 0.30), (320, 0.17), (2048, 0.08))


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything needed to synthesise one benchmark's behaviour."""

    name: str
    description: str

    # -- published full-program profile (Table II / Table III) -------------
    table_max_active: int
    table_allocations: int
    table_deallocations: int

    # -- dynamic window behaviour ------------------------------------------
    #: Fraction of instructions that are loads/stores.
    mem_frac: float = 0.30
    #: Of memory ops, fraction that are stores.
    store_ratio: float = 0.35
    #: Of memory ops, fraction that target heap objects (signed under AOS).
    heap_frac: float = 0.60
    branch_frac: float = 0.12
    falu_frac: float = 0.05
    #: Fraction of branch sites with essentially random outcomes.
    random_branch_frac: float = 0.15
    #: Function calls per 1000 instructions (drives PA's pacia/autia).
    call_rate: float = 4.0
    #: Allocation calls per 1000 instructions in the measured window.
    mallocs_per_kinst: float = 0.2
    #: Live heap objects at the start of the window (max-active scaled).
    initial_live: int = 64
    #: Object-size mixture sampled at allocation.
    size_classes: SizeClasses = DEFAULT_SIZES
    #: Fraction of live objects forming the hot working set, and the
    #: probability an access lands in it (footprint / locality knobs).
    hot_fraction: float = 0.10
    hot_access_prob: float = 0.70
    #: Probability a heap access stays on the same object as the previous
    #: one (loop-over-object burstiness — what gives the BWB its >80 % hit
    #: rates in Fig. 17).
    burst_prob: float = 0.85
    #: Lifetime skew of freed objects: 1.0 frees the most recent
    #: allocations (tcache churn, short-lived event objects), 0.0 frees
    #: the oldest.  Warm allocator/HBT rows come from high recency.
    free_recency: float = 0.7
    #: Fraction of object accesses that stream sequentially (vs random).
    seq_frac: float = 0.50
    #: Of heap accesses, fraction that move pointers (PARTS sign/auth and
    #: Watchdog metadata-propagation targets).
    ptr_frac: float = 0.08
    #: Pointer-arithmetic sites per 1000 instructions (Watchdog WMETA).
    ptr_arith_rate: float = 25.0
    #: Fraction of heap loads whose address depends on the previous load
    #: (pointer chasing).
    chase_frac: float = 0.05
    #: Probability an instruction depends on a recent producer.
    dep_prob: float = 0.45
    #: Mean distance of such dependencies (ILP knob).
    ilp_distance: int = 12

    def __post_init__(self) -> None:
        fracs = self.mem_frac + self.branch_frac + self.falu_frac
        if fracs >= 1.0:
            raise WorkloadError(f"{self.name}: instruction mix exceeds 100%")
        total_weight = sum(w for _, w in self.size_classes)
        if not 0.99 <= total_weight <= 1.01:
            raise WorkloadError(f"{self.name}: size-class weights must sum to 1")


def _p(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


#: The 16 SPEC CPU 2006 workloads of Table II / Figs. 14-18.
SPEC2006_PROFILES: Dict[str, WorkloadProfile] = {
    "bzip2": _p(
        name="bzip2",
        description="compression; signed-access heavy, modest footprint",
        table_max_active=10, table_allocations=29, table_deallocations=25,
        mem_frac=0.34, store_ratio=0.35, heap_frac=0.86,
        branch_frac=0.13, random_branch_frac=0.22,
        call_rate=1.0, mallocs_per_kinst=0.0,
        initial_live=10,
        size_classes=((262144, 0.5), (1048576, 0.5)),
        hot_fraction=0.5, hot_access_prob=0.6, seq_frac=0.75,
        ptr_frac=0.02, chase_frac=0.02, dep_prob=0.5, ilp_distance=10,
    ),
    "gcc": _p(
        name="gcc",
        description="compiler; large footprint, malloc-heavy, memory-intensive",
        table_max_active=81825, table_allocations=1846825, table_deallocations=1829255,
        mem_frac=0.44, store_ratio=0.40, heap_frac=0.84,
        branch_frac=0.16, random_branch_frac=0.18,
        call_rate=8.0, mallocs_per_kinst=12.0,
        initial_live=81825,
        size_classes=((256, 0.30), (1024, 0.30), (4096, 0.30), (16384, 0.10)),
        hot_fraction=0.55, hot_access_prob=0.30, seq_frac=0.25,
        burst_prob=0.68, free_recency=0.2,
        ptr_frac=0.14, chase_frac=0.12, dep_prob=0.5, ilp_distance=10,
    ),
    "mcf": _p(
        name="mcf",
        description="network simplex; pointer chasing over a huge static graph",
        table_max_active=6, table_allocations=8, table_deallocations=8,
        mem_frac=0.42, store_ratio=0.25, heap_frac=0.55,
        branch_frac=0.17, random_branch_frac=0.30,
        call_rate=2.0, mallocs_per_kinst=0.0,
        initial_live=6,
        size_classes=((4194304, 1.0),),
        hot_fraction=1.0, hot_access_prob=0.2, seq_frac=0.15,
        ptr_frac=0.20, chase_frac=0.35, dep_prob=0.6, ilp_distance=6,
    ),
    "milc": _p(
        name="milc",
        description="lattice QCD; FP heavy, streaming, misprediction-prone",
        table_max_active=61, table_allocations=6523, table_deallocations=6474,
        mem_frac=0.36, store_ratio=0.30, heap_frac=0.42,
        branch_frac=0.10, falu_frac=0.25, random_branch_frac=0.40,
        call_rate=2.0, mallocs_per_kinst=0.002,
        initial_live=61,
        size_classes=((65536, 0.6), (262144, 0.4)),
        hot_fraction=0.6, hot_access_prob=0.5, seq_frac=0.85,
        ptr_frac=0.02, chase_frac=0.01, dep_prob=0.4, ilp_distance=16,
    ),
    "namd": _p(
        name="namd",
        description="molecular dynamics; FP heavy, cache friendly",
        table_max_active=1316, table_allocations=1328, table_deallocations=1326,
        mem_frac=0.32, store_ratio=0.25, heap_frac=0.38,
        branch_frac=0.09, falu_frac=0.30, random_branch_frac=0.38,
        call_rate=3.0, mallocs_per_kinst=0.0005,
        initial_live=1316,
        size_classes=((1024, 0.6), (8192, 0.4)),
        hot_fraction=0.3, hot_access_prob=0.8, seq_frac=0.70,
        ptr_frac=0.03, chase_frac=0.02, dep_prob=0.4, ilp_distance=16,
    ),
    "gobmk": _p(
        name="gobmk",
        description="game AI; branchy, small heap, misprediction-prone",
        table_max_active=1021, table_allocations=137369, table_deallocations=137358,
        mem_frac=0.28, store_ratio=0.35, heap_frac=0.30,
        branch_frac=0.19, random_branch_frac=0.42,
        call_rate=9.0, mallocs_per_kinst=0.046,
        initial_live=1021,
        size_classes=DEFAULT_SIZES,
        hot_fraction=0.2, hot_access_prob=0.8, seq_frac=0.45,
        ptr_frac=0.06, chase_frac=0.04, dep_prob=0.5, ilp_distance=10,
    ),
    "soplex": _p(
        name="soplex",
        description="LP solver; mixed, moderate footprint",
        table_max_active=140, table_allocations=98955, table_deallocations=34025,
        mem_frac=0.38, store_ratio=0.30, heap_frac=0.58,
        branch_frac=0.14, falu_frac=0.12, random_branch_frac=0.20,
        call_rate=4.0, mallocs_per_kinst=0.033,
        initial_live=140,
        size_classes=((4096, 0.5), (65536, 0.5)),
        hot_fraction=0.4, hot_access_prob=0.6, seq_frac=0.55,
        ptr_frac=0.07, chase_frac=0.05, dep_prob=0.45, ilp_distance=12,
    ),
    "povray": _p(
        name="povray",
        description="ray tracer; malloc-heavy with a small live set",
        table_max_active=11667, table_allocations=2461247, table_deallocations=2461107,
        mem_frac=0.33, store_ratio=0.35, heap_frac=0.52,
        branch_frac=0.13, falu_frac=0.18, random_branch_frac=0.16,
        call_rate=11.0, mallocs_per_kinst=2.5,
        initial_live=11667,
        size_classes=((32, 0.5), (128, 0.35), (512, 0.15)),
        hot_fraction=0.15, hot_access_prob=0.88, seq_frac=0.40,
        burst_prob=0.85, free_recency=0.9,
        ptr_frac=0.10, chase_frac=0.06, dep_prob=0.45, ilp_distance=12,
    ),
    "hmmer": _p(
        name="hmmer",
        description="HMM search; >99% signed accesses, call-heavy, high IPC",
        table_max_active=1450, table_allocations=1474128, table_deallocations=1474128,
        mem_frac=0.42, store_ratio=0.42, heap_frac=0.995,
        branch_frac=0.08, random_branch_frac=0.06,
        call_rate=16.0, mallocs_per_kinst=0.49,
        initial_live=1450,
        size_classes=((128, 0.4), (512, 0.4), (2048, 0.2)),
        free_recency=0.9,
        hot_fraction=0.25, hot_access_prob=0.85, seq_frac=0.80,
        ptr_frac=0.04, chase_frac=0.02, dep_prob=0.35, ilp_distance=20,
    ),
    "sjeng": _p(
        name="sjeng",
        description="chess; almost no heap traffic, branchy",
        table_max_active=6, table_allocations=6, table_deallocations=2,
        mem_frac=0.26, store_ratio=0.35, heap_frac=0.12,
        branch_frac=0.18, random_branch_frac=0.35,
        call_rate=8.0, mallocs_per_kinst=0.0,
        initial_live=6,
        size_classes=((1048576, 1.0),),
        hot_fraction=1.0, hot_access_prob=0.8, seq_frac=0.40,
        ptr_frac=0.04, chase_frac=0.02, dep_prob=0.5, ilp_distance=10,
    ),
    "libquantum": _p(
        name="libquantum",
        description="quantum simulation; streaming over one large array",
        table_max_active=5, table_allocations=180, table_deallocations=180,
        mem_frac=0.35, store_ratio=0.30, heap_frac=0.72,
        branch_frac=0.14, random_branch_frac=0.08,
        call_rate=1.5, mallocs_per_kinst=0.0001,
        initial_live=5,
        size_classes=((2097152, 1.0),),
        hot_fraction=1.0, hot_access_prob=0.5, seq_frac=0.95,
        ptr_frac=0.01, chase_frac=0.0, dep_prob=0.3, ilp_distance=24,
    ),
    "h264ref": _p(
        name="h264ref",
        description="video encoder; moderate heap, compute dense",
        table_max_active=13857, table_allocations=38275, table_deallocations=38273,
        mem_frac=0.37, store_ratio=0.35, heap_frac=0.62,
        branch_frac=0.11, random_branch_frac=0.14,
        call_rate=6.0, mallocs_per_kinst=0.013,
        initial_live=13857,
        size_classes=((256, 0.4), (2048, 0.4), (16384, 0.2)),
        hot_fraction=0.2, hot_access_prob=0.88, seq_frac=0.70,
        burst_prob=0.92,
        ptr_frac=0.05, chase_frac=0.03, dep_prob=0.45, ilp_distance=14,
    ),
    "lbm": _p(
        name="lbm",
        description="fluid dynamics; signed-heavy but compute bound",
        table_max_active=5, table_allocations=7, table_deallocations=7,
        mem_frac=0.24, store_ratio=0.45, heap_frac=0.92,
        branch_frac=0.04, falu_frac=0.35, random_branch_frac=0.05,
        call_rate=0.5, mallocs_per_kinst=0.0,
        initial_live=5,
        size_classes=((8388608, 1.0),),
        hot_fraction=1.0, hot_access_prob=0.5, seq_frac=0.97,
        ptr_frac=0.01, chase_frac=0.0, dep_prob=0.3, ilp_distance=28,
    ),
    "omnetpp": _p(
        name="omnetpp",
        description="discrete-event sim; ~2M live objects, malloc storm",
        table_max_active=1993737, table_allocations=21244416, table_deallocations=21244416,
        mem_frac=0.38, store_ratio=0.38, heap_frac=0.62,
        branch_frac=0.15, random_branch_frac=0.24,
        call_rate=12.0, mallocs_per_kinst=7.1,
        # The measured window (first 3B instructions) sees the live set
        # still growing; Table II's 2M max-active is a full-run figure.
        initial_live=400000,
        size_classes=((64, 0.45), (192, 0.35), (512, 0.20)),
        hot_fraction=0.02, hot_access_prob=0.93, seq_frac=0.30,
        burst_prob=0.86, free_recency=0.92,
        ptr_frac=0.16, chase_frac=0.18, dep_prob=0.55, ilp_distance=8,
    ),
    "astar": _p(
        name="astar",
        description="path finding; branchy, moderate heap, mispredict prone",
        table_max_active=190984, table_allocations=1116621, table_deallocations=1116621,
        mem_frac=0.33, store_ratio=0.30, heap_frac=0.45,
        branch_frac=0.17, random_branch_frac=0.40,
        call_rate=5.0, mallocs_per_kinst=0.37,
        # Live set still below its full-run maximum in the measured window.
        initial_live=100000,
        size_classes=((48, 0.5), (160, 0.35), (1024, 0.15)),
        hot_fraction=0.08, hot_access_prob=0.85, seq_frac=0.35,
        burst_prob=0.90,
        ptr_frac=0.12, chase_frac=0.14, dep_prob=0.55, ilp_distance=8,
    ),
    "sphinx3": _p(
        name="sphinx3",
        description="speech recognition; malloc-heavy, large live set",
        table_max_active=200686, table_allocations=14224690, table_deallocations=14024020,
        mem_frac=0.40, store_ratio=0.30, heap_frac=0.68,
        branch_frac=0.12, falu_frac=0.15, random_branch_frac=0.15,
        call_rate=7.0, mallocs_per_kinst=4.7,
        initial_live=200686,
        size_classes=((48, 0.55), (256, 0.35), (2048, 0.10)),
        free_recency=0.95,
        hot_fraction=0.02, hot_access_prob=0.96, seq_frac=0.45,
        ptr_frac=0.08, chase_frac=0.06, dep_prob=0.45, ilp_distance=12,
    ),
}


#: The 6 real-world benchmarks of Table III.
REALWORLD_PROFILES: Dict[str, WorkloadProfile] = {
    "pbzip2": _p(
        name="pbzip2",
        description="Compress 1.4GB file, 8 threads",
        table_max_active=110, table_allocations=12425, table_deallocations=12423,
        mem_frac=0.34, heap_frac=0.85, initial_live=110,
        mallocs_per_kinst=0.01,
        size_classes=((262144, 0.6), (1048576, 0.4)),
    ),
    "pigz": _p(
        name="pigz",
        description="Compress 1.4GB file, 8 threads",
        table_max_active=110, table_allocations=24511, table_deallocations=24511,
        mem_frac=0.33, heap_frac=0.82, initial_live=110,
        mallocs_per_kinst=0.02,
        size_classes=((131072, 0.7), (524288, 0.3)),
    ),
    "axel": _p(
        name="axel",
        description="Download 1.4GB file, 8 threads",
        table_max_active=172, table_allocations=473, table_deallocations=473,
        mem_frac=0.28, heap_frac=0.55, initial_live=172,
        mallocs_per_kinst=0.001,
        size_classes=((4096, 0.5), (65536, 0.5)),
    ),
    "md5sum": _p(
        name="md5sum",
        description="Calculate MD5 hash, 1.4GB file",
        table_max_active=32, table_allocations=34, table_deallocations=34,
        mem_frac=0.30, heap_frac=0.75, initial_live=32,
        mallocs_per_kinst=0.0,
        size_classes=((65536, 1.0),),
    ),
    "apache": _p(
        name="apache",
        description="Apache bench, 10K requests",
        table_max_active=7592, table_allocations=13360000, table_deallocations=13360000,
        mem_frac=0.36, heap_frac=0.60, initial_live=7592,
        mallocs_per_kinst=4.0, call_rate=14.0,
        size_classes=((64, 0.4), (512, 0.4), (4096, 0.2)),
    ),
    "mysql": _p(
        name="mysql",
        description="Sysbench, 100K requests",
        table_max_active=5380, table_allocations=28622, table_deallocations=28621,
        mem_frac=0.37, heap_frac=0.58, initial_live=5380,
        mallocs_per_kinst=0.05, call_rate=12.0,
        size_classes=((128, 0.4), (1024, 0.4), (16384, 0.2)),
    ),
}


ALL_PROFILES: Dict[str, WorkloadProfile] = {**SPEC2006_PROFILES, **REALWORLD_PROFILES}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by benchmark name."""
    profile = ALL_PROFILES.get(name)
    if profile is None:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(sorted(ALL_PROFILES))}"
        )
    return profile

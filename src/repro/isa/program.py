"""Program containers: ordered instruction streams with summary statistics.

A :class:`Program` is an immutable, lowered dynamic instruction trace ready
for the timing model.  :class:`ProgramBuilder` is the mutable construction
interface used by the compiler passes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from .instructions import Instruction, Op, MEMORY_OPS


@dataclass(frozen=True)
class Program:
    """An immutable dynamic instruction trace."""

    instructions: Tuple[Instruction, ...]
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def op_histogram(self) -> Dict[Op, int]:
        """Dynamic instruction counts per opcode."""
        return dict(Counter(inst.op for inst in self.instructions))

    def memory_op_count(self) -> int:
        return sum(1 for inst in self.instructions if inst.op in MEMORY_OPS)

    def instruction_overhead_vs(self, other: "Program") -> float:
        """Fractional dynamic-instruction overhead of ``self`` over ``other``.

        This is the metric behind the paper's "Watchdog showed 44 % more
        dynamic instruction counts" observation (§I).
        """
        if len(other) == 0:
            raise ValueError("cannot compare against an empty program")
        return len(self) / len(other) - 1.0


class ProgramBuilder:
    """Accumulates instructions and produces a :class:`Program`."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: List[Instruction] = []

    def __len__(self) -> int:
        return len(self._instructions)

    def emit(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)

    def emit_all(self, instructions: Iterable[Instruction]) -> None:
        self._instructions.extend(instructions)

    def emit_op(self, op: Op, **kwargs: object) -> None:
        self._instructions.append(Instruction(op=op, **kwargs))  # type: ignore[arg-type]

    def build(self) -> Program:
        return Program(instructions=tuple(self._instructions), name=self.name)

"""The instruction vocabulary executed by the trace-driven core model.

The simulator is trace-driven: workload generators emit *events* (compute,
memory access, malloc, call...) and the compiler passes (:mod:`repro.compiler`)
lower them into concrete :class:`Instruction` streams per mechanism.  Each
instruction carries everything the timing model and the functional AOS
machinery need:

- ``op``            — the opcode (:class:`Op`);
- ``address``       — the (possibly signed) pointer value for memory and
  pointer ops;
- ``size``          — access size in bytes / allocation size for ``bndstr``;
- ``deps``          — relative distances to earlier producing instructions,
  used by the out-of-order timing model for dependency stalls;
- ``latency``       — fixed execution latency override (0 = per-op default);
- ``meta``          — opcode-specific payload (e.g. taken/mispredicted for
  branches, object id for accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional, Tuple


class Op(Enum):
    """Opcodes understood by the core model."""

    # Ordinary computation.
    ALU = auto()          # integer arithmetic / logic
    FALU = auto()         # floating point
    NOP = auto()

    # Control flow.
    BRANCH = auto()       # conditional branch (meta: mispredicted bool)
    CALL = auto()
    RET = auto()

    # Memory.
    LOAD = auto()
    STORE = auto()

    # Stock Arm PA (used by the PA/PARTS baseline and PA+AOS, §II-B).
    PACIA = auto()        # sign return address / code pointer
    AUTIA = auto()        # authenticate return address / code pointer
    PACDA = auto()        # sign data pointer (PARTS data-pointer integrity)
    AUTDA = auto()        # authenticate data pointer
    XPAC = auto()         # strip PAC

    # AOS ISA extension (§IV-A).
    PACMA = auto()        # sign data pointer with PAC + AHC
    XPACM = auto()        # strip PAC and AHC
    AUTM = auto()         # authenticate AHC != 0 (on-load authentication)
    BNDSTR = auto()       # compute + store bounds into the HBT
    BNDCLR = auto()       # clear bounds in the HBT

    # Watchdog baseline micro-ops (Fig. 5a).
    WCHK = auto()         # lock-and-key + bounds check µop
    WMETA = auto()        # metadata propagation instruction

    # Trace markers (zero-latency, not real instructions).
    MALLOC_MARK = auto()  # records an allocation site boundary
    FREE_MARK = auto()


#: Ops that access data memory through the LSU.
MEMORY_OPS = frozenset({Op.LOAD, Op.STORE})

#: Ops the MCU also receives when issued (loads/stores and bounds ops, §V-A).
MCU_OPS = frozenset({Op.LOAD, Op.STORE, Op.BNDSTR, Op.BNDCLR})

#: Simple single-cycle integer ops.
ALU_OPS = frozenset({Op.ALU, Op.NOP, Op.XPAC, Op.XPACM, Op.WMETA})

#: PA crypto ops (4-cycle QARMA latency, Table IV).
CRYPTO_OPS = frozenset({Op.PACIA, Op.AUTIA, Op.PACDA, Op.AUTDA, Op.PACMA, Op.AUTM})


def is_memory_op(op: Op) -> bool:
    return op in MEMORY_OPS


def is_alu_op(op: Op) -> bool:
    return op in ALU_OPS


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction in a lowered trace."""

    op: Op
    #: Pointer value for memory/pointer ops (may carry PAC+AHC upper bits).
    address: int = 0
    #: Access size (bytes) for loads/stores; object size for bndstr/pacma.
    size: int = 8
    #: Relative distances (>=1) to earlier instructions this one depends on.
    deps: Tuple[int, ...] = ()
    #: Fixed latency override in cycles; 0 means "use the per-op default".
    latency: int = 0
    #: Branch outcome: True if the branch mispredicts (resolved by the
    #: workload's modelled predictor accuracy).
    mispredicted: bool = False
    #: Free-form opcode-specific payload (object ids, markers).
    meta: Optional[object] = None

    def with_address(self, address: int) -> "Instruction":
        return Instruction(
            op=self.op,
            address=address,
            size=self.size,
            deps=self.deps,
            latency=self.latency,
            mispredicted=self.mispredicted,
            meta=self.meta,
        )


#: Per-op default execution latencies (cycles).  Loads/stores get their
#: latency from the cache hierarchy instead.
DEFAULT_LATENCY = {
    Op.ALU: 1,
    Op.FALU: 3,
    Op.NOP: 1,
    Op.BRANCH: 1,
    Op.CALL: 1,
    Op.RET: 1,
    Op.PACIA: 4,
    Op.AUTIA: 4,
    Op.PACDA: 4,
    Op.AUTDA: 4,
    Op.PACMA: 4,
    Op.AUTM: 1,   # AHC != 0 comparison only, no QARMA (§VII-B)
    Op.XPAC: 1,
    Op.XPACM: 1,
    Op.BNDSTR: 1,  # occupies MCU; latency modelled there
    Op.BNDCLR: 1,
    Op.WCHK: 1,    # check µop; metadata access latency modelled separately
    Op.WMETA: 1,
    Op.MALLOC_MARK: 0,
    Op.FREE_MARK: 0,
}

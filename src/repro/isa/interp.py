"""A functional interpreter for encoded AOS programs.

Executes real 32-bit instruction words — the §IV-A extension encodings
from :mod:`repro.isa.binenc` plus a handful of base ops — against a
register file, simulated memory, the pointer-signing unit and the MCU.
This is the assembly-level view of AOS: the Fig. 7 instrumentation
sequences can be assembled, executed, and shown to enforce exactly the
Fig. 12 detection behaviour.

The interpreter is deliberately small (it exists to validate the ISA
semantics, not to run large programs — the trace-driven pipeline does
that), but it is complete for the AOS extension: every new instruction's
architectural side effects, including AOS exceptions surfacing at the
faulting instruction with no architectural state change (precise
exceptions, §III-C.4).

Base operations (loads, stores, moves, adds, calls into the allocator)
use a simple word format of our own, tagged disjointly from the AOS
group so both kinds can be mixed in one program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..core.mcu import MemoryCheckUnit
from ..core.signing import PointerSigner
from ..errors import EncodingError, SimulationError
from ..memory.allocator import HeapAllocator
from ..memory.memory import SparseMemory
from .binenc import decode as decode_aos
from .binenc import encode as encode_aos
from .registers import Register, RegisterFile

MASK64 = (1 << 64) - 1

#: Base-op group tag (disjoint from binenc.GROUP_TAG).
BASE_TAG = 0b11010100101


class BaseOp(Enum):
    """Base (non-AOS) operations the interpreter supports."""

    MOVZ = 0b000001    # xd = imm16
    ADD = 0b000010     # xd = xn + xm
    ADDI = 0b000011    # xd = xn + imm16 (imm in the Xm field x 8... no: imm16)
    LDR = 0b000100     # xd = mem[xn]  (MCU-checked)
    STR = 0b000101     # mem[xn] = xd  (MCU-checked)
    MALLOC = 0b000110  # xd = malloc(xn)   (runtime call)
    FREE = 0b000111    # free(xn)          (runtime call)
    HALT = 0b111111


_X = [
    Register.X0, Register.X1, Register.X2, Register.X3, Register.X4,
    Register.X5, Register.X6, Register.X7, Register.X8, Register.X9,
]


def _reg(index: int) -> Register:
    if index == 31:
        return Register.XZR
    if index < len(_X):
        return _X[index]
    raise EncodingError(f"interpreter register file has x0..x9 (got x{index})")


@dataclass
class Assembler:
    """Tiny two-section assembler: instruction words plus an immediate pool.

    Base-op layout: ``| BASE_TAG:11 | opcode:6 | xd:5 | xn:5 | imm_idx:5 |``
    where ``imm_idx`` indexes a 64-bit immediate pool (index 31 = none).
    """

    words: List[int] = field(default_factory=list)
    immediates: List[int] = field(default_factory=list)

    def _emit_base(self, op: BaseOp, xd: int = 0, xn: int = 0, imm_index: int = 31) -> None:
        word = (BASE_TAG << 21) | (op.value << 15) | (xd << 10) | (xn << 5) | imm_index
        self.words.append(word)

    def _imm(self, value: int) -> int:
        if len(self.immediates) >= 31:
            raise EncodingError("immediate pool full (max 31 entries)")
        self.immediates.append(value & MASK64)
        return len(self.immediates) - 1

    # ------------------------------------------------------------- base ops

    def movz(self, xd: int, value: int) -> "Assembler":
        self._emit_base(BaseOp.MOVZ, xd=xd, imm_index=self._imm(value))
        return self

    def add(self, xd: int, xn: int, value: int = 0) -> "Assembler":
        self._emit_base(BaseOp.ADD, xd=xd, xn=xn, imm_index=self._imm(value))
        return self

    def ldr(self, xd: int, xn: int) -> "Assembler":
        self._emit_base(BaseOp.LDR, xd=xd, xn=xn)
        return self

    def str_(self, xd: int, xn: int) -> "Assembler":
        self._emit_base(BaseOp.STR, xd=xd, xn=xn)
        return self

    def malloc(self, xd: int, xn: int) -> "Assembler":
        self._emit_base(BaseOp.MALLOC, xd=xd, xn=xn)
        return self

    def free(self, xn: int) -> "Assembler":
        self._emit_base(BaseOp.FREE, xn=xn)
        return self

    def halt(self) -> "Assembler":
        self._emit_base(BaseOp.HALT)
        return self

    # -------------------------------------------------------------- AOS ops

    def aos(self, mnemonic: str, xd: int = 0, xn: int = 0, xm: int = 0) -> "Assembler":
        self.words.append(encode_aos(mnemonic, xd=xd, xn=xn, xm=xm))
        return self


@dataclass
class TrapInfo:
    """An architectural trap raised mid-program."""

    pc: int
    word: int
    exception: Exception


class Interpreter:
    """Executes assembled programs against the AOS machine state."""

    def __init__(
        self,
        memory: SparseMemory,
        allocator: HeapAllocator,
        signer: PointerSigner,
        mcu: MemoryCheckUnit,
    ) -> None:
        self.memory = memory
        self.allocator = allocator
        self.signer = signer
        self.mcu = mcu
        self.registers = RegisterFile()
        self.registers[Register.SP] = allocator.layout.stack_top - 0x100
        self.instructions_retired = 0
        self.trap: Optional[TrapInfo] = None

    # ------------------------------------------------------------- plumbing

    def _read(self, index: int) -> int:
        return self.registers[_reg(index)]

    def _write(self, index: int, value: int) -> None:
        self.registers[_reg(index)] = value & MASK64

    def _checked_access(self, pointer: int, is_store: bool) -> int:
        result = self.mcu.check_access(pointer, is_store=is_store)
        if not result.ok and result.fault is not None:
            raise result.fault
        return self.signer.xpacm(pointer)

    # ------------------------------------------------------------ execution

    def run(self, assembler: Assembler, max_steps: int = 100_000) -> Optional[TrapInfo]:
        """Execute until HALT, the end of the program, or a trap.

        Returns the trap (also stored on :attr:`trap`), or None on clean
        completion.  Architectural state is NOT updated by a faulting
        instruction — precise exceptions.
        """
        words = assembler.words
        imms = assembler.immediates
        pc = 0
        for _ in range(max_steps):
            if pc >= len(words):
                return None
            word = words[pc]
            try:
                if not self._step(word, imms):
                    return None  # HALT
            except Exception as exc:  # noqa: BLE001 — traps are the contract
                self.trap = TrapInfo(pc=pc, word=word, exception=exc)
                return self.trap
            self.instructions_retired += 1
            pc += 1
        raise SimulationError("interpreter step budget exhausted")

    def _step(self, word: int, imms: List[int]) -> bool:
        aos = decode_aos(word)
        if aos is not None:
            self._step_aos(aos)
            return True

        if (word >> 21) != BASE_TAG:
            raise EncodingError(f"undecodable instruction word {word:#010x}")
        opcode = BaseOp((word >> 15) & 0x3F)
        xd = (word >> 10) & 0x1F
        xn = (word >> 5) & 0x1F
        imm_index = word & 0x1F
        imm = imms[imm_index] if imm_index < len(imms) else 0

        if opcode is BaseOp.MOVZ:
            self._write(xd, imm)
        elif opcode is BaseOp.ADD:
            self._write(xd, self._read(xn) + imm)
        elif opcode is BaseOp.LDR:
            address = self._checked_access(self._read(xn), is_store=False)
            self._write(xd, self.memory.read_u64(address))
        elif opcode is BaseOp.STR:
            address = self._checked_access(self._read(xn), is_store=True)
            self.memory.write_u64(address, self._read(xd))
        elif opcode is BaseOp.MALLOC:
            self._write(xd, self.allocator.malloc(self._read(xn)))
        elif opcode is BaseOp.FREE:
            self.allocator.free(self.signer.xpacm(self._read(xn)))
        elif opcode is BaseOp.HALT:
            return False
        else:  # pragma: no cover — enum is exhaustive
            raise EncodingError(f"unhandled base opcode {opcode}")
        return True

    def _step_aos(self, decoded) -> None:
        name = decoded.mnemonic
        if name in ("pacma", "pacmb"):
            pointer = self._read(decoded.xd)
            modifier = (
                self.registers[Register.SP]
                if decoded.xn == 31
                else self._read(decoded.xn)
            )
            size = self._read(decoded.xm)  # XZR (31) reads 0: the free() case
            sign = self.signer.pacma if name == "pacma" else self.signer.pacmb
            self._write(decoded.xd, sign(pointer, modifier, size))
        elif name == "xpacm":
            self._write(decoded.xd, self.signer.xpacm(self._read(decoded.xd)))
        elif name == "autm":
            self.signer.autm(self._read(decoded.xd))
        elif name == "bndstr":
            pointer = self._read(decoded.xn)
            size = self._read(decoded.xm)
            result = self.mcu.bounds_store(pointer, size)
            if not result.ok and result.fault is not None:
                raise result.fault
        elif name == "bndclr":
            result = self.mcu.bounds_clear(self._read(decoded.xn))
            if not result.ok and result.fault is not None:
                raise result.fault
        else:  # pragma: no cover — binenc's table is exhaustive
            raise EncodingError(f"unhandled AOS mnemonic {name}")


def make_interpreter(pac_mode: str = "fast") -> Interpreter:
    """A ready-to-run machine: memory + allocator + signer + MCU."""
    from ..config import default_config
    from ..core.hbt import HashedBoundsTable
    from ..crypto.pac import PACGenerator, PAKeys
    from ..isa.encoding import PointerLayout
    from ..memory.layout import DEFAULT_LAYOUT

    config = default_config("aos")
    memory = SparseMemory()
    allocator = HeapAllocator(memory, DEFAULT_LAYOUT)
    layout = PointerLayout(pac_bits=config.pa.pac_bits)
    signer = PointerSigner(
        generator=PACGenerator(
            keys=PAKeys(apma=config.pa.key),
            pac_bits=config.pa.pac_bits,
            mode=pac_mode,
        ),
        layout=layout,
    )
    hbt = HashedBoundsTable(pac_bits=config.pa.pac_bits, initial_ways=1)
    mcu = MemoryCheckUnit(hbt=hbt, layout=layout, options=config.aos)
    return Interpreter(memory=memory, allocator=allocator, signer=signer, mcu=mcu)

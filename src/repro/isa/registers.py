"""A minimal AArch64-flavoured register file.

The timing model tracks dependencies through relative distances rather than
register names (traces are pre-renamed), but the *functional* layer — the
allocator-driven examples and the security analysis — manipulates pointers
in named registers, so a small register file is provided for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

MASK64 = (1 << 64) - 1


class Register(str, Enum):
    """General-purpose and special registers used by the functional layer."""

    X0 = "x0"
    X1 = "x1"
    X2 = "x2"
    X3 = "x3"
    X4 = "x4"
    X5 = "x5"
    X6 = "x6"
    X7 = "x7"
    X8 = "x8"
    X9 = "x9"
    SP = "sp"     # stack pointer (the pacma modifier, §IV-C)
    FP = "fp"     # frame pointer
    LR = "lr"     # link register (return address)
    XZR = "xzr"   # zero register (always reads 0; writes discarded)


@dataclass
class RegisterFile:
    """A named 64-bit register file with an architectural zero register."""

    _values: Dict[Register, int] = field(default_factory=dict)

    def read(self, reg: Register) -> int:
        if reg is Register.XZR:
            return 0
        return self._values.get(reg, 0)

    def write(self, reg: Register, value: int) -> None:
        if reg is Register.XZR:
            return  # architecturally discarded
        self._values[reg] = value & MASK64

    def __getitem__(self, reg: Register) -> int:
        return self.read(reg)

    def __setitem__(self, reg: Register, value: int) -> None:
        self.write(reg, value)

"""ISA model: pointer bit layout, registers, and the instruction set.

This package defines the AArch64-like instruction vocabulary the simulator
executes, including the five new AOS instructions (§IV-A): ``pacma``/
``pacmb``, ``xpacm``, ``autm``, ``bndstr`` and ``bndclr``, alongside the
stock Arm PA instructions (``pacia``/``autia``/...) used by the PA baseline.
"""

from .encoding import PointerLayout, SignedPointer
from .instructions import Op, Instruction, is_memory_op, is_alu_op
from .registers import Register, RegisterFile
from .program import Program, ProgramBuilder
from .binenc import encode as encode_instruction, decode as decode_instruction

__all__ = [
    "PointerLayout",
    "SignedPointer",
    "Op",
    "Instruction",
    "is_memory_op",
    "is_alu_op",
    "Register",
    "RegisterFile",
    "Program",
    "ProgramBuilder",
    "encode_instruction",
    "decode_instruction",
]

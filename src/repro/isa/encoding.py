"""Pointer bit layout: where the VA, AHC and PAC live in a 64-bit pointer.

AOS stores two metadata fields in the unused upper bits of a data pointer
(Fig. 6):

- a 2-bit **AHC** (address hashing code, Alg. 1): nonzero means the pointer
  is signed/protected and encodes the object's size class;
- the **PAC**, the truncated QARMA output used to index the HBT.

Real AArch64 splits the PAC field around bit 55 (the address-space-half
bit).  We model a clean contiguous layout that preserves the field *sizes*
the paper evaluates — ``va_bits`` of address, 2 bits of AHC, ``pac_bits``
of PAC — which is what the mechanism's behaviour depends on:

::

    63            48 47  46 45                                   0
    +---------------+------+--------------------------------------+
    |      PAC      | AHC  |            virtual address           |
    +---------------+------+--------------------------------------+
                          (va_bits = 46, pac_bits = 16 default)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EncodingError

MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class PointerLayout:
    """Field layout of a (possibly signed) 64-bit pointer."""

    va_bits: int = 46
    ahc_bits: int = 2
    pac_bits: int = 16

    def __post_init__(self) -> None:
        if self.va_bits + self.ahc_bits + self.pac_bits > 64:
            raise EncodingError("pointer layout exceeds 64 bits")
        if self.ahc_bits != 2:
            raise EncodingError("AOS defines a 2-bit AHC (§IV-A)")
        if not 11 <= self.pac_bits <= 32:
            raise EncodingError("PAC size must be 11..32 bits (§II-B)")

    # -- field masks ---------------------------------------------------------

    @property
    def va_mask(self) -> int:
        return (1 << self.va_bits) - 1

    @property
    def ahc_shift(self) -> int:
        return self.va_bits

    @property
    def ahc_mask(self) -> int:
        return ((1 << self.ahc_bits) - 1) << self.ahc_shift

    @property
    def pac_shift(self) -> int:
        return self.va_bits + self.ahc_bits

    @property
    def pac_mask(self) -> int:
        return ((1 << self.pac_bits) - 1) << self.pac_shift

    # -- encode / decode -----------------------------------------------------

    def sign(self, address: int, pac: int, ahc: int) -> int:
        """Embed ``pac`` and ``ahc`` into the upper bits of ``address``."""
        if address & ~self.va_mask:
            raise EncodingError(
                f"address {address:#x} does not fit in {self.va_bits} VA bits"
            )
        if not 0 <= pac < (1 << self.pac_bits):
            raise EncodingError(f"PAC {pac:#x} does not fit in {self.pac_bits} bits")
        if not 0 <= ahc < (1 << self.ahc_bits):
            raise EncodingError(f"AHC {ahc} does not fit in {self.ahc_bits} bits")
        return (pac << self.pac_shift) | (ahc << self.ahc_shift) | address

    def strip(self, pointer: int) -> int:
        """Remove PAC and AHC — the ``xpacm`` operation (§IV-A)."""
        return pointer & self.va_mask

    def address(self, pointer: int) -> int:
        """The virtual address carried by a (possibly signed) pointer."""
        return pointer & self.va_mask

    def pac(self, pointer: int) -> int:
        return (pointer & self.pac_mask) >> self.pac_shift

    def ahc(self, pointer: int) -> int:
        return (pointer & self.ahc_mask) >> self.ahc_shift

    def is_signed(self, pointer: int) -> bool:
        """Nonzero AHC marks a pointer as signed by AOS (Fig. 6)."""
        return self.ahc(pointer) != 0

    def decode(self, pointer: int) -> "SignedPointer":
        return SignedPointer(
            raw=pointer & MASK64,
            address=self.address(pointer),
            pac=self.pac(pointer),
            ahc=self.ahc(pointer),
        )


@dataclass(frozen=True)
class SignedPointer:
    """A decoded view of a 64-bit pointer's fields."""

    raw: int
    address: int
    pac: int
    ahc: int

    @property
    def is_signed(self) -> bool:
        return self.ahc != 0

    def __int__(self) -> int:
        return self.raw

"""Binary encodings for the AOS instruction-set extension (§IV-A).

AOS adds five instructions as variants of the Armv8.3-A PAuth group:

=========================  =============================================
``pacma  <Xd>, <Xn|SP>, <Xm>``  sign with PAC+AHC, size operand ``Xm``
``pacmb  <Xd>, <Xn|SP>, <Xm>``  same, key B
``xpacm  <Xd>``                 strip PAC and AHC
``autm   <Xd>``                 authenticate AHC != 0 (no strip)
``bndstr <Xn>, <Xm>``           compute + store bounds into the HBT
``bndclr <Xn>``                 clear bounds for pointer ``Xn``
=========================  =============================================

We encode them in a 32-bit A64-style format within the unallocated
``0xDAC2xxxx`` region adjacent to the real PAuth encodings (``PACDA`` et
al. live at ``0xDAC1xxxx``).  The exact opcode values are our own — Arm
has not allocated encodings for AOS — but the field discipline (5-bit
register specifiers, three-operand data-processing format) matches the
architecture, so instruction *size* and decode structure are realistic.

Layout::

    31       21 20   16 15      10 9     5 4     0
    +-----------+-------+----------+--------+-------+
    | 11011010110 |  Xm  |  opcode  |   Xn   |  Xd   |
    +-----------+-------+----------+--------+-------+
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import EncodingError

#: Fixed top-11-bit group tag (the 0xDAC2 region).
GROUP_TAG = 0b11011010110

#: 6-bit opcodes within the group.
OPCODES: Dict[str, int] = {
    "pacma": 0b000001,
    "pacmb": 0b000010,
    "xpacm": 0b000011,
    "autm": 0b000100,
    "bndstr": 0b000101,
    "bndclr": 0b000110,
}

_MNEMONICS = {v: k for k, v in OPCODES.items()}

#: Register specifier for SP/XZR (encoding 31, context dependent, as in A64).
REG_SP = 31

#: Which operands each mnemonic uses: (uses_xd, uses_xn, uses_xm).
_OPERANDS: Dict[str, Tuple[bool, bool, bool]] = {
    "pacma": (True, True, True),
    "pacmb": (True, True, True),
    "xpacm": (True, False, False),
    "autm": (True, False, False),
    "bndstr": (False, True, True),
    "bndclr": (False, True, False),
}


@dataclass(frozen=True)
class DecodedInstruction:
    """A decoded AOS-extension instruction word."""

    mnemonic: str
    xd: int
    xn: int
    xm: int

    def assembly(self) -> str:
        uses_xd, uses_xn, uses_xm = _OPERANDS[self.mnemonic]
        regs = []
        if uses_xd:
            regs.append(_reg_name(self.xd))
        if uses_xn:
            regs.append(_reg_name(self.xn, sp=True))
        if uses_xm:
            regs.append(_reg_name(self.xm))
        return f"{self.mnemonic} " + ", ".join(regs)


def _reg_name(index: int, sp: bool = False) -> str:
    if index == REG_SP:
        return "sp" if sp else "xzr"
    return f"x{index}"


def _check_reg(value: int, name: str) -> None:
    if not 0 <= value <= 31:
        raise EncodingError(f"{name} must be a 5-bit register specifier, got {value}")


def encode(mnemonic: str, xd: int = 0, xn: int = 0, xm: int = 0) -> int:
    """Encode one AOS instruction to its 32-bit word."""
    opcode = OPCODES.get(mnemonic)
    if opcode is None:
        raise EncodingError(f"unknown AOS mnemonic {mnemonic!r}")
    for value, name in ((xd, "Xd"), (xn, "Xn"), (xm, "Xm")):
        _check_reg(value, name)
    return (GROUP_TAG << 21) | (xm << 16) | (opcode << 10) | (xn << 5) | xd


def decode(word: int) -> Optional[DecodedInstruction]:
    """Decode a 32-bit word; None if it is not an AOS-extension encoding."""
    if not 0 <= word < (1 << 32):
        raise EncodingError("instruction word must be 32 bits")
    if (word >> 21) != GROUP_TAG:
        return None
    opcode = (word >> 10) & 0x3F
    mnemonic = _MNEMONICS.get(opcode)
    if mnemonic is None:
        return None
    return DecodedInstruction(
        mnemonic=mnemonic,
        xd=word & 0x1F,
        xn=(word >> 5) & 0x1F,
        xm=(word >> 16) & 0x1F,
    )


def assemble_aos_malloc(ptr_reg: int = 0, size_reg: int = 1) -> Tuple[int, int]:
    """The Fig. 7a post-malloc pair: ``pacma ptr, sp, size ; bndstr ptr, size``."""
    return (
        encode("pacma", xd=ptr_reg, xn=REG_SP, xm=size_reg),
        encode("bndstr", xn=ptr_reg, xm=size_reg),
    )


def assemble_aos_free(ptr_reg: int = 0) -> Tuple[int, int, int]:
    """The Fig. 7b free sequence around the ``free()`` call:
    ``bndclr ptr ; xpacm ptr ; ... ; pacma ptr, sp, xzr``."""
    return (
        encode("bndclr", xn=ptr_reg),
        encode("xpacm", xd=ptr_reg),
        encode("pacma", xd=ptr_reg, xn=REG_SP, xm=REG_SP),  # xm=31 reads XZR
    )

"""A glibc-flavoured heap allocator over :class:`SparseMemory`.

This models ptmalloc closely enough for the paper's security and temporal-
safety arguments to be exercised for real:

- chunks carry boundary tags (``prev_size`` / ``size`` with a
  ``PREV_INUSE`` flag) and payloads are 16-byte aligned — the property the
  AOS bounds-compression format relies on (§V-D);
- small freed chunks go to **fastbins** (and optionally a glibc-2.26-style
  **tcache**) without coalescing, so the House-of-Spirit attack (Fig. 1)
  works against an unprotected heap: ``free()`` trusts the in-memory size
  field, and a crafted fake chunk is handed back by a later ``malloc``;
- larger frees coalesce with free neighbours via boundary tags — the
  legitimate out-of-bounds header accesses that force AOS to ``xpacm``
  pointers before ``free()`` (§IV-C);
- freed-then-reused memory means a dangling pointer really does alias a new
  object, which is what AOS's bounds-clearing must catch.

The allocator also keeps the statistics the paper profiles in Tables II/III
(allocation/deallocation counts and the maximum number of simultaneously
active chunks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AllocatorError
from .layout import AddressSpaceLayout, DEFAULT_LAYOUT
from .memory import SparseMemory

ALIGNMENT = 16
HEADER_SIZE = 16          # prev_size + size words
MIN_CHUNK = 32
PREV_INUSE = 0x1
FLAG_MASK = 0x7
#: Largest chunk size served from fastbins (glibc default ballpark).
FASTBIN_MAX = 128
#: Max chunks per tcache bin (glibc 2.26 default).
TCACHE_COUNT = 7
#: Largest chunk size cached by the tcache.
TCACHE_MAX = 1040


def _align_up(value: int, alignment: int = ALIGNMENT) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def chunk_size_for_request(request: int) -> int:
    """Chunk size (header included) for a user request of ``request`` bytes."""
    if request < 0:
        raise AllocatorError("negative allocation size")
    return max(MIN_CHUNK, _align_up(request + HEADER_SIZE))


@dataclass
class Chunk:
    """Registry view of a live or free chunk (mirror of in-memory tags)."""

    address: int          # chunk base (header start)
    size: int             # full chunk size incl. header
    in_use: bool

    @property
    def payload(self) -> int:
        return self.address + HEADER_SIZE

    @property
    def end(self) -> int:
        return self.address + self.size

    @property
    def usable(self) -> int:
        return self.size - HEADER_SIZE


@dataclass
class AllocatorStats:
    """The Table II / Table III profile counters."""

    allocations: int = 0
    deallocations: int = 0
    active: int = 0
    max_active: int = 0
    bytes_allocated: int = 0
    bytes_freed: int = 0

    def on_alloc(self, size: int) -> None:
        self.allocations += 1
        self.active += 1
        self.bytes_allocated += size
        if self.active > self.max_active:
            self.max_active = self.active

    def on_free(self, size: int) -> None:
        self.deallocations += 1
        self.active -= 1
        self.bytes_freed += size


class HeapAllocator:
    """ptmalloc-style allocator with fastbins, tcache and coalescing."""

    def __init__(
        self,
        memory: SparseMemory,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        use_tcache: bool = True,
        tcache_key_check: bool = False,
    ) -> None:
        self.memory = memory
        self.layout = layout
        self.use_tcache = use_tcache
        #: glibc 2.29 added a per-chunk "tcache key" to detect the naive
        #: tcache double free (the 2.26 hole the paper cites, §VII-D).
        #: Off by default to model the glibc generation the paper targets.
        self.tcache_key_check = tcache_key_check
        self.stats = AllocatorStats()
        #: End of the used heap (the "top chunk" frontier).
        self._brk = layout.heap_base
        #: Registry of chunks the allocator itself created, by chunk address.
        self._chunks: Dict[int, Chunk] = {}
        #: Free lists: size -> LIFO list of chunk addresses (small/large bins).
        self._bins: Dict[int, List[int]] = {}
        #: Fastbins: size -> LIFO list of *payload* addresses.  Entries may be
        #: attacker-crafted fake chunks; only memory contents are trusted.
        self._fastbins: Dict[int, List[int]] = {}
        #: tcache: size -> LIFO list of payload addresses.
        self._tcache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ utils

    def _read_size_field(self, chunk_addr: int) -> int:
        return self.memory.read_u64(chunk_addr + 8)

    def _write_size_field(self, chunk_addr: int, size: int, prev_inuse: bool) -> None:
        self.memory.write_u64(chunk_addr + 8, size | (PREV_INUSE if prev_inuse else 0))

    def _write_prev_size(self, chunk_addr: int, prev_size: int) -> None:
        self.memory.write_u64(chunk_addr, prev_size)

    def chunk_at_payload(self, payload: int) -> Optional[Chunk]:
        """Registry lookup: the chunk whose payload starts at ``payload``."""
        return self._chunks.get(payload - HEADER_SIZE)

    def allocated_size(self, payload: int) -> int:
        """Usable size of a live allocation (for ``bndstr``'s size operand)."""
        chunk = self.chunk_at_payload(payload)
        if chunk is None or not chunk.in_use:
            raise AllocatorError(f"{payload:#x} is not a live allocation")
        return chunk.usable

    @property
    def heap_used(self) -> int:
        return self._brk - self.layout.heap_base

    # ----------------------------------------------------------------- malloc

    def malloc(self, request: int) -> int:
        """Allocate ``request`` bytes; returns the 16-byte-aligned payload."""
        if request == 0:
            request = 1  # glibc returns a unique minimal chunk
        size = chunk_size_for_request(request)

        payload = self._take_cached(size)
        if payload is None:
            payload = self._take_binned(size)
        if payload is None:
            payload = self._extend_top(size)

        chunk = self._chunks.get(payload - HEADER_SIZE)
        if chunk is not None:
            chunk.in_use = True
            self.stats.on_alloc(chunk.usable)
        else:
            # A fake chunk from a poisoned fastbin: the attack succeeded and
            # malloc is returning attacker-chosen memory (Fig. 1).  Account
            # for it with the requested size; there is no registry entry.
            self.stats.on_alloc(size - HEADER_SIZE)
        return payload

    def _take_cached(self, size: int) -> Optional[int]:
        """Try the tcache then the fastbins (LIFO, no coalescing)."""
        if self.use_tcache and size <= TCACHE_MAX:
            bin_ = self._tcache.get(size)
            if bin_:
                return bin_.pop()
        if size <= FASTBIN_MAX:
            bin_ = self._fastbins.get(size)
            if bin_:
                return bin_.pop()
        return None

    def _take_binned(self, size: int) -> Optional[int]:
        """Best-fit search over the coalesced free bins, splitting remainders."""
        best_size = None
        for bin_size, entries in self._bins.items():
            if bin_size >= size and entries and (best_size is None or bin_size < best_size):
                best_size = bin_size
        if best_size is None:
            return None
        chunk_addr = self._bins[best_size].pop()
        chunk = self._chunks[chunk_addr]
        remainder = chunk.size - size
        if remainder >= MIN_CHUNK:
            self._split(chunk, size)
        self._write_size_field(chunk.address, chunk.size, prev_inuse=True)
        self._set_next_prev_inuse(chunk, True)
        return chunk.payload

    def _split(self, chunk: Chunk, size: int) -> None:
        """Split ``chunk`` into an allocated head and a free remainder."""
        remainder_addr = chunk.address + size
        remainder_size = chunk.size - size
        chunk.size = size
        remainder = Chunk(address=remainder_addr, size=remainder_size, in_use=False)
        self._chunks[remainder_addr] = remainder
        self._write_size_field(remainder_addr, remainder_size, prev_inuse=True)
        self._write_prev_size(remainder_addr + remainder_size, remainder_size)
        self._bins.setdefault(remainder_size, []).append(remainder_addr)

    def _extend_top(self, size: int) -> int:
        if self._brk + size > self.layout.heap_end:
            raise AllocatorError("simulated heap exhausted")
        chunk_addr = self._brk
        self._brk += size
        chunk = Chunk(address=chunk_addr, size=size, in_use=True)
        self._chunks[chunk_addr] = chunk
        self._write_size_field(chunk_addr, size, prev_inuse=True)
        return chunk.payload

    # ------------------------------------------------------------------- free

    def free(self, payload: int) -> None:
        """Free a payload pointer, glibc-style.

        Like glibc, the *in-memory* size field is what gets validated — a
        crafted fake chunk with a plausible size passes the checks and lands
        in a fastbin/tcache (the House-of-Spirit entry point).
        """
        if payload == 0:
            return  # free(NULL) is a no-op
        chunk_addr = payload - HEADER_SIZE
        if payload % ALIGNMENT != 0:
            raise AllocatorError("free(): invalid pointer (misaligned)")
        raw = self._read_size_field(chunk_addr)
        size = raw & ~FLAG_MASK
        if size < MIN_CHUNK or size % ALIGNMENT != 0:
            raise AllocatorError("free(): invalid size")
        if not self.layout.in_heap(chunk_addr) and not self._is_plausible_fake(chunk_addr):
            raise AllocatorError("free(): pointer outside heap")

        chunk = self._chunks.get(chunk_addr)

        if self.use_tcache and size <= TCACHE_MAX:
            bin_ = self._tcache.setdefault(size, [])
            # glibc 2.26 shipped tcache without a double-free check — the
            # "new heap exploit, double free" the paper cites (§VII-D).
            # glibc 2.29's key check (opt-in here) closes the naive case.
            if self.tcache_key_check and payload in bin_:
                raise AllocatorError("free(): double free detected in tcache 2")
            if len(bin_) < TCACHE_COUNT:
                bin_.append(payload)
                self._mark_freed(chunk)
                return

        if size <= FASTBIN_MAX:
            bin_ = self._fastbins.setdefault(size, [])
            if bin_ and bin_[-1] == payload:
                # The one fastbin check glibc does perform.
                raise AllocatorError("free(): double free or corruption (fasttop)")
            bin_.append(payload)
            self._mark_freed(chunk)
            return

        if chunk is None:
            raise AllocatorError("free(): invalid pointer (unknown chunk)")
        if not chunk.in_use:
            raise AllocatorError("free(): double free or corruption (!prev)")
        self._mark_freed(chunk)
        chunk = self._coalesce(chunk)
        chunk.in_use = False
        self._write_size_field(chunk.address, chunk.size, prev_inuse=True)
        self._write_prev_size(chunk.address + chunk.size, chunk.size)
        self._set_next_prev_inuse(chunk, False)
        self._bins.setdefault(chunk.size, []).append(chunk.address)

    def _is_plausible_fake(self, chunk_addr: int) -> bool:
        """Fake chunks on the stack/globals still reach the bins, as in glibc
        (glibc only verifies heap membership for mmapped chunks)."""
        region = self.layout.region_of(chunk_addr)
        return region in ("stack", "globals", "heap")

    def _mark_freed(self, chunk: Optional[Chunk]) -> None:
        if chunk is not None and chunk.in_use:
            chunk.in_use = False
            self.stats.on_free(chunk.usable)
        elif chunk is None:
            # Fake chunk: glibc would happily count this as a free.
            self.stats.deallocations += 1

    def _neighbour_after(self, chunk: Chunk) -> Optional[Chunk]:
        return self._chunks.get(chunk.end)

    def _neighbour_before(self, chunk: Chunk) -> Optional[Chunk]:
        # Boundary tag: the previous chunk's size sits in our prev_size field
        # whenever the previous chunk is free.
        prev_size = self.memory.read_u64(chunk.address)
        if prev_size < MIN_CHUNK or prev_size % ALIGNMENT != 0:
            return None
        return self._chunks.get(chunk.address - prev_size)

    def _remove_from_bins(self, chunk: Chunk) -> bool:
        bin_ = self._bins.get(chunk.size)
        if bin_ and chunk.address in bin_:
            bin_.remove(chunk.address)
            return True
        return False

    def _coalesce(self, chunk: Chunk) -> Chunk:
        """Merge with free boundary-tag neighbours (block coalescing, §IV-C)."""
        nxt = self._neighbour_after(chunk)
        if nxt is not None and not nxt.in_use and self._remove_from_bins(nxt):
            del self._chunks[nxt.address]
            chunk.size += nxt.size
        prev = self._neighbour_before(chunk)
        if prev is not None and not prev.in_use and self._remove_from_bins(prev):
            del self._chunks[chunk.address]
            prev.size += chunk.size
            chunk = prev
        return chunk

    def _set_next_prev_inuse(self, chunk: Chunk, in_use: bool) -> None:
        nxt = self._neighbour_after(chunk)
        if nxt is not None:
            raw = self._read_size_field(nxt.address)
            size = raw & ~FLAG_MASK
            self._write_size_field(nxt.address, size, prev_inuse=in_use)

    # ------------------------------------------------------------------ debug

    def live_chunks(self) -> List[Chunk]:
        return [c for c in self._chunks.values() if c.in_use]

    def publish_metrics(self, registry) -> None:
        """Harvest the Table II/III profile into a ``MetricsRegistry``."""
        registry.count("alloc.mallocs", self.stats.allocations)
        registry.count("alloc.frees", self.stats.deallocations)
        registry.count("alloc.bytes_allocated", self.stats.bytes_allocated)
        registry.count("alloc.bytes_freed", self.stats.bytes_freed)
        registry.set_gauge("alloc.active", self.stats.active)
        registry.set_gauge("alloc.max_active", self.stats.max_active)
        registry.set_gauge("alloc.heap_used", self.heap_used)

    # ------------------------------------------------------- fault injection

    def corrupt_chunk_header(self, payload: int, raw_size: int) -> int:
        """Fault-injection seam: clobber the in-memory size field of the
        chunk owning ``payload``; returns the old raw field.

        Only the boundary tag in simulated memory changes — the registry is
        deliberately left stale, reproducing exactly the divergence a heap
        overflow into a neighbour's header creates.  Whether ``free()``
        later catches it depends on glibc's own sanity checks, which is the
        point of the chunk-header fault campaign.
        """
        chunk_addr = payload - HEADER_SIZE
        old = self._read_size_field(chunk_addr)
        self.memory.write_u64(chunk_addr + 8, raw_size & ((1 << 64) - 1))
        return old

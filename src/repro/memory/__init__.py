"""Memory substrate: address-space layout, sparse memory, heap allocator.

The allocator is a deliberately glibc-flavoured ptmalloc model — chunk
headers, 16-byte-aligned payloads, fastbins, a tcache, free-list bins and
boundary-tag coalescing — because the paper's temporal-safety story (§IV-C)
and its House-of-Spirit case study (Fig. 1) depend on real allocator
behaviour: ``free()`` legitimately touching neighbouring chunk metadata,
fastbins accepting crafted chunks, and freed memory being reused by later
allocations with the same size class.
"""

from .layout import AddressSpaceLayout, DEFAULT_LAYOUT
from .memory import SparseMemory
from .allocator import HeapAllocator, Chunk
from .shadow import ShadowMemory

__all__ = [
    "AddressSpaceLayout",
    "DEFAULT_LAYOUT",
    "SparseMemory",
    "HeapAllocator",
    "Chunk",
    "ShadowMemory",
]

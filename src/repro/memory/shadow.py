"""Shadow-memory metadata store for the Watchdog/ASan-style baselines.

The paper contrasts AOS's hashed bounds table against shadow-space schemes
(Fig. 4b): a fixed mapping ``f(addr)`` mirrors application addresses into a
metadata region, which wastes address space (Challenge 4) but makes lookup
trivial.  Watchdog keeps 24-byte identifier/bounds records per pointer;
ASan keeps one shadow byte per 8 application bytes.

We implement the Watchdog flavour: a direct-mapped shadow of the heap that
stores (lock address, key, lower bound, upper bound) records at
``shadow_base + (addr - heap_base) * scale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import MemoryError_
from .layout import AddressSpaceLayout, DEFAULT_LAYOUT
from .memory import SparseMemory

#: Watchdog metadata is 24 bytes per tracked word (§IX-A: "larger metadata
#: of 24 bytes, compared to 8 bytes in AOS").
WATCHDOG_RECORD_BYTES = 24


@dataclass(frozen=True)
class ShadowRecord:
    """One Watchdog-style metadata record."""

    key: int
    lock_address: int
    lower: int
    upper: int


class ShadowMemory:
    """Direct-mapped shadow space over the heap region (Fig. 4b)."""

    def __init__(
        self,
        memory: SparseMemory,
        layout: AddressSpaceLayout = DEFAULT_LAYOUT,
        granularity: int = 16,
    ) -> None:
        self.memory = memory
        self.layout = layout
        #: Application bytes covered by one shadow record.
        self.granularity = granularity
        #: Side registry so records round-trip exactly (the packed in-memory
        #: form is lossy, which is fine for traffic modelling but not for
        #: checking).
        self._records: dict = {}

    def shadow_address(self, address: int) -> int:
        """The f(addr) mapping of Fig. 4b."""
        if not self.layout.in_heap(address):
            raise MemoryError_(f"{address:#x} is not a heap address")
        slot = (address - self.layout.heap_base) // self.granularity
        return self.layout.shadow_base + slot * WATCHDOG_RECORD_BYTES

    def store(self, address: int, record: ShadowRecord) -> int:
        """Write a record for ``address``; returns the shadow address touched."""
        base = self.shadow_address(address)
        self.memory.write_u64(base, record.key)
        self.memory.write_u64(base + 8, record.lock_address)
        # Pack bounds into the third word: the real Watchdog keeps them in
        # extended registers; the shadow copy holds the spill format.
        self.memory.write_u64(base + 16, (record.lower ^ record.upper) & ((1 << 64) - 1))
        self._records[base] = record
        return base

    def load(self, address: int) -> Tuple[Optional[ShadowRecord], int]:
        """Read the record for ``address``; returns (record, shadow address)."""
        base = self.shadow_address(address)
        return self._records.get(base), base

    def clear(self, address: int) -> int:
        base = self.shadow_address(address)
        self.memory.write_u64(base, 0)
        self.memory.write_u64(base + 8, 0)
        self.memory.write_u64(base + 16, 0)
        self._records.pop(base, None)
        return base

    def shadow_bytes_per_app_byte(self) -> float:
        """Memory overhead ratio (Challenge 4 accounting)."""
        return WATCHDOG_RECORD_BYTES / self.granularity

"""A sparse, byte-addressable 64-bit memory model.

Backed by 4 KB ``bytearray`` pages allocated on first touch, so a 46-bit
address space costs only what the simulation actually touches.  Words are
little-endian, matching AArch64.
"""

from __future__ import annotations

from typing import Dict

from ..errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class SparseMemory:
    """Byte-addressable memory with on-demand 4 KB pages."""

    def __init__(self, va_bits: int = 46) -> None:
        self.va_bits = va_bits
        self._limit = 1 << va_bits
        self._pages: Dict[int, bytearray] = {}

    # -- bookkeeping ----------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Number of pages actually touched (memory-overhead accounting)."""
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    def _check_range(self, address: int, size: int) -> None:
        if address < 0 or size < 0 or address + size > self._limit:
            raise MemoryError_(
                f"access [{address:#x}, {address + size:#x}) outside "
                f"{self.va_bits}-bit address space"
            )

    # -- raw byte access -------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        self._check_range(address, size)
        out = bytearray()
        while size > 0:
            page_index, offset = address >> PAGE_SHIFT, address & PAGE_MASK
            chunk = min(size, PAGE_SIZE - offset)
            page = self._pages.get(page_index)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[offset : offset + chunk])
            address += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        self._check_range(address, len(data))
        pos = 0
        size = len(data)
        while pos < size:
            page_index = (address + pos) >> PAGE_SHIFT
            offset = (address + pos) & PAGE_MASK
            chunk = min(size - pos, PAGE_SIZE - offset)
            self._page(page_index)[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk

    # -- word access -----------------------------------------------------------

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 8), "little")

    def write_u64(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & ((1 << 64) - 1)).to_bytes(8, "little"))

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 4), "little")

    def write_u32(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & ((1 << 32) - 1)).to_bytes(4, "little"))

    def fill(self, address: int, size: int, byte: int = 0) -> None:
        self.write_bytes(address, bytes([byte]) * size)

"""Virtual address-space layout of a simulated process.

The heap is deliberately placed low enough that every heap address fits in
33 bits — the AOS bounds-compression format (§V-D, Fig. 9) keeps only bits
[32:4] of the lower bound, so a well-formed simulated process must keep its
heap below 8 GB for compressed bounds to be exact (the paper makes the same
assumption and discusses the >=8 GB aliasing case under false positives,
§VII-E).  The HBT itself lives *above* that limit: bounds-table rows are
not heap objects and are never bounds-compressed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AddressSpaceLayout:
    """Base addresses and extents of each region (all in one 46-bit VA)."""

    text_base: int = 0x0000_0040_0000
    text_size: int = 0x0000_0020_0000
    globals_base: int = 0x0000_0060_0000
    globals_size: int = 0x0000_0040_0000
    #: Heap kept under 2**33 so compressed bounds are exact (§V-D).
    heap_base: int = 0x0000_2000_0000
    heap_size: int = 0x0000_C000_0000
    #: Hashed bounds table region (outside the compressible heap range).
    hbt_base: int = 0x0070_0000_0000
    hbt_size: int = 0x0010_0000_0000
    #: Shadow-metadata region used by the Watchdog/ASan-style baselines.
    shadow_base: int = 0x0100_0000_0000
    shadow_size: int = 0x0100_0000_0000
    #: Stack grows down from the top of the 46-bit VA.
    stack_top: int = 0x3FFF_FFFF_0000
    stack_size: int = 0x0000_0080_0000

    def __post_init__(self) -> None:
        heap_end = self.heap_base + self.heap_size
        if heap_end > (1 << 33):
            raise ValueError(
                "heap must stay below 2**33 for exact bounds compression (§V-D)"
            )

    @property
    def heap_end(self) -> int:
        return self.heap_base + self.heap_size

    @property
    def stack_base(self) -> int:
        return self.stack_top - self.stack_size

    def in_heap(self, address: int) -> bool:
        return self.heap_base <= address < self.heap_end

    def in_stack(self, address: int) -> bool:
        return self.stack_base <= address < self.stack_top

    def region_of(self, address: int) -> str:
        """Classify an address ('heap', 'stack', 'text', 'globals', 'hbt'...)."""
        if self.in_heap(address):
            return "heap"
        if self.in_stack(address):
            return "stack"
        if self.text_base <= address < self.text_base + self.text_size:
            return "text"
        if self.globals_base <= address < self.globals_base + self.globals_size:
            return "globals"
        if self.hbt_base <= address < self.hbt_base + self.hbt_size:
            return "hbt"
        if self.shadow_base <= address < self.shadow_base + self.shadow_size:
            return "shadow"
        return "unmapped"


DEFAULT_LAYOUT = AddressSpaceLayout()

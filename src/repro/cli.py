"""Command-line interface: ``python -m repro <artifact> [options]``.

Regenerates any table or figure from the paper's evaluation without
writing code::

    python -m repro fig11
    python -m repro fig14 --workloads gcc hmmer --instructions 40000
    python -m repro fig14 --jobs 4               # shard cells across cores
    python -m repro security
    python -m repro ablations
    python -m repro all                          # everything (several minutes)
    python -m repro all --quick --jobs 2         # reduced CI smoke sweep

Simulation cells and generated traces are cached persistently (under
``~/.cache/repro``, ``$REPRO_CACHE_DIR`` or ``--cache-dir``) keyed by run
settings + configuration + a source digest, so repeated invocations on
unchanged code are incremental; ``--no-cache`` disables this.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import (
    ExperimentSuite,
    RunSettings,
    default_cache_dir,
    run_fig11,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from .experiments.ablations import (
    ablation_bwb,
    ablation_entropy,
    ablation_forwarding,
    ablation_mcq,
    ablation_quarantine,
    ablation_resize,
)
from .kernel import KERNELS
from .obs import ObsSettings, PhaseProfiler
from .security import run_security_analysis
from .supervise import trap_signals

#: artifact name -> (description, needs timing suite?)
ARTIFACTS = {
    "fig11": "PAC distribution by QARMA (§VI)",
    "fig14": "normalized execution time (Fig. 14)",
    "fig15": "L1-B / compression ablation (Fig. 15)",
    "fig16": "instruction mix (Fig. 16)",
    "fig17": "bounds accesses + BWB hit rate (Fig. 17)",
    "fig18": "normalized network traffic (Fig. 18)",
    "table1": "hardware overhead (Table I) + parameters (Table IV)",
    "table2": "SPEC memory profiles (Table II)",
    "table3": "real-world profiles (Table III)",
    "security": "attack detection matrix (§VII)",
    "ablations": "design-choice ablations (BWB, MCQ, resize, entropy)",
    "mte": "extended comparison vs memory tagging (§X)",
    "faultinject": "fault-injection campaign + detection coverage (§VII)",
    "attack": "adversarial scenario corpus chaos campaign (§VII, §VII-C)",
    "trace": "cycle-stamped event trace + metrics (Chrome/Perfetto export)",
    "trace-export": "export a synthetic workload window as a versioned trace file",
    "trace-import": "ingest a JSONL/binary trace file, validate and simulate it",
    "mechanisms": "registered mechanism plugins (--list/--json/--fingerprint)",
    "serve": "distributed campaign coordinator over a durable work queue",
    "worker": "lease-based queue worker process (claim/run/ack loop)",
    "cache": "artifact cache maintenance (--stats/--prune)",
}

#: Artifacts ``all`` must skip: file writers (``trace``, ``trace-export``),
#: exit-code owners (``attack``, ``trace-import``), and operational faces
#: that need extra arguments (``serve``, ``worker``, ``cache``).  Run them
#: directly instead.
OPERATIONAL_ARTIFACTS = frozenset(
    ("trace", "attack", "serve", "worker", "cache", "trace-export", "trace-import")
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the AOS paper's evaluation artifacts.",
        epilog="artifacts: " + ", ".join(f"{k} ({v})" for k, v in ARTIFACTS.items()),
    )
    parser.add_argument(
        "artifact",
        choices=list(ARTIFACTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        help="trace only: the workload to trace (default gcc)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None,
        help="restrict the SPEC workload list (timing figures only)",
    )
    parser.add_argument(
        "--instructions", type=int, default=40_000,
        help="window length per workload (default 40000)",
    )
    parser.add_argument(
        "--scale", type=int, default=8,
        help="live-set / cache scale divisor, power of two (default 8)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--pac-samples", type=int, default=1 << 20,
        help="malloc count for fig11 (default 2^20, the paper's 'million')",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent simulation cells (default 1); "
        "results are bit-identical to a serial run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep: 3 workloads, short windows, small fig11 sample, "
        "quick faultinject campaign (CI smoke shape)",
    )
    parser.add_argument(
        "--kernel", choices=list(KERNELS), default="reference",
        help="simulation kernel: 'reference' (readable scoreboard model), "
        "'fast' (flattened transcription, byte-identical results, ~2x+ "
        "faster) or 'specialized' (trace-speculative generated code, "
        "guarded fallback to reference; see tests/test_kernel_equivalence.py)",
    )
    parser.add_argument(
        "--batch", choices=["auto", "never", "always"], default="auto",
        help="cross-cell lockstep batching of simulation cells (specialized "
        "kernel only; 'auto' batches exactly when --kernel specialized)",
    )
    parser.add_argument(
        "--guard-inject", default="", metavar="SPEC",
        help="deterministic specialization guard-failure injection: 'entry' "
        "or 'after:<N>', optionally '@<substr>'-filtered by program name; "
        "forces the reference-kernel fallback path (testing/CI seam, also "
        "via $REPRO_GUARD_INJECT)",
    )
    obs = parser.add_argument_group("observability options")
    obs.add_argument(
        "--metrics", action="store_true",
        help="collect per-cell metrics during timing sweeps and print the "
        "merged registry after the artifacts",
    )
    obs.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the (deterministic) metrics snapshot as JSON",
    )
    obs.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="trace only: Chrome trace-event output path (default trace.json)",
    )
    obs.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="trace only: also write the raw event ring as JSONL",
    )
    obs.add_argument(
        "--mechanism", default="aos",
        help="trace only: mechanism to trace (default aos)",
    )
    obs.add_argument(
        "--trace-capacity", type=int, default=None, metavar="N",
        help="trace only: event ring capacity (default 65536)",
    )
    obs.add_argument(
        "--profile", action="store_true",
        help="print the engine's per-phase wall-clock profile at exit",
    )
    traces = parser.add_argument_group("trace frontend options")
    traces.add_argument(
        "--trace", default=None, metavar="FILE",
        help="timing artifacts: run over this ingested trace file instead of "
        "the synthetic workloads (cells are cached by the file's sha256)",
    )
    traces.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="trace-export only: output path "
        "(default <workload>.trace.<jsonl|bin>)",
    )
    traces.add_argument(
        "--trace-format", choices=["jsonl", "binary"], default="jsonl",
        help="trace-export only: wire format (default jsonl)",
    )
    traces.add_argument(
        "--verify-roundtrip", action="store_true",
        help="trace-import only: regenerate the synthetic source named in "
        "the trace header and assert byte-identical simulation results on "
        "both kernels (requires a trace produced by trace-export)",
    )
    cache = parser.add_argument_group("artifact cache options")
    cache.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent artifact cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact cache for this invocation",
    )
    cache.add_argument(
        "--cache-backend", choices=["local", "shared", "memory"], default="local",
        help="cache storage backend: 'local' (classic per-user layout), "
        "'shared' (content-addressed store with cross-fingerprint dedup, "
        "for caches shared between workers/users), 'memory' (ephemeral)",
    )
    cache.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="size cap for the artifact cache; least-recently-used entries "
        "are evicted past it (default: $REPRO_CACHE_MAX_BYTES or unlimited)",
    )
    cache.add_argument(
        "--stats", action="store_true", dest="cache_stats",
        help="cache only: print usage statistics and exit",
    )
    cache.add_argument(
        "--prune", action="store_true", dest="cache_prune",
        help="cache only: evict LRU entries down to --cache-max-bytes "
        "(or $REPRO_CACHE_MAX_BYTES) and garbage-collect shared-store blobs",
    )
    queue = parser.add_argument_group("queue options (serve/worker)")
    queue.add_argument(
        "--queue", default=None, metavar="DIR",
        help="queue directory (SQLite job store + heartbeat board); workers "
        "and coordinators sharing it form one campaign service",
    )
    queue.add_argument(
        "--campaign-id", default="campaign", metavar="ID",
        help="serve only: campaign name inside the queue (default 'campaign')",
    )
    queue.add_argument(
        "--queue-workers", type=int, default=3, metavar="N",
        help="serve only: worker processes to spawn (default 3)",
    )
    queue.add_argument(
        "--priority", type=int, default=0,
        help="serve only: campaign priority (higher is served first)",
    )
    queue.add_argument(
        "--weight", type=float, default=1.0,
        help="serve only: fair-share weight among equal-priority campaigns",
    )
    queue.add_argument(
        "--claim-batch", type=int, default=2, metavar="N",
        help="cells a worker leases per claim (default 2)",
    )
    queue.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="SECONDS",
        help="lease TTL; a dead worker's cells are reclaimed after this "
        "(live workers refresh their leases at ttl/3; default 15)",
    )
    queue.add_argument(
        "--worker-heartbeat-timeout", type=float, default=5.0, metavar="SECONDS",
        help="a worker whose board heartbeat is older than this is presumed "
        "dead and its leases reclaimed early (default 5)",
    )
    queue.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="worker only: stable identity on the queue (default worker-<pid>)",
    )
    queue.add_argument(
        "--verify-serial", action="store_true",
        help="serve only: after the distributed run, re-run the campaign "
        "serially in-process and assert byte-identical merged results",
    )
    queue.add_argument(
        "--queue-fault", default=None, metavar="KIND",
        help="chaos injection against the queue layer itself: 'worker-kill' "
        "(SIGKILL the first worker after --kill-after-cells cells) or "
        "'lease-clock-skew' (skew the first worker's lease clock)",
    )
    queue.add_argument(
        "--kill-after-cells", type=int, default=None, metavar="K",
        help="worker-kill fault: SIGKILL after acking K cells (default 2)",
    )
    queue.add_argument(
        "--clock-skew", type=float, default=None, metavar="SECONDS",
        help="lease-clock-skew fault: offset of the skewed worker's clock "
        "(default -30, i.e. leases stamped 30s in the past)",
    )
    fault = parser.add_argument_group("faultinject options")
    fault.add_argument(
        "--mechanisms", nargs="+", default=None,
        help="protection mechanisms to inject under (default: aos)",
    )
    fault.add_argument(
        "--fault-locations", type=int, default=None,
        help="fault locations swept per kind",
    )
    fault.add_argument(
        "--fault-timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds",
    )
    fault.add_argument(
        "--fault-checkpoint", default=None, metavar="PATH",
        help="JSONL checkpoint; an interrupted campaign resumes from it",
    )
    fault.add_argument(
        "--fault-kinds", nargs="+", default=None, metavar="KIND",
        help="restrict the campaign to these fault kinds "
        "(default: all 12; e.g. ptr-pac-flip use-after-free)",
    )
    attack = parser.add_argument_group("attack options")
    attack.add_argument(
        "--scenarios", nargs="+", default=None, metavar="NAME",
        help="restrict the corpus to these scenarios (default: all; "
        "e.g. ahc-zero-escape uaf-stale-load)",
    )
    attack.add_argument(
        "--matrix-out", default=None, metavar="PATH",
        help="attack only: write the scenario-matrix JSON artifact",
    )
    attack.add_argument(
        "--pareto", action="store_true",
        help="attack only: also run the timing sweep and print the "
        "detection-coverage vs overhead Pareto table",
    )
    attack.add_argument(
        "--no-supervise", action="store_true",
        help="attack only: run the corpus serially in-process instead of "
        "under the supervision layer",
    )
    mech = parser.add_argument_group("mechanisms options")
    mech.add_argument(
        "--list", action="store_true", dest="mech_list",
        help="mechanisms only: print bare registered names, one per line "
        "(the CI matrix source)",
    )
    mech.add_argument(
        "--json", action="store_true", dest="mech_json",
        help="mechanisms only: dump the registry (specs + fingerprint) as JSON",
    )
    mech.add_argument(
        "--fingerprint", action="store_true", dest="mech_fingerprint",
        help="mechanisms only: print the registry fingerprint (the CI cache key)",
    )
    sup = parser.add_argument_group("supervision options")
    sup.add_argument(
        "--supervise", action="store_true",
        help="run simulation cells under the supervisor: per-cell deadlines, "
        "heartbeats, retry with backoff, quarantine, degradation ladder",
    )
    sup.add_argument(
        "--paranoid", action="store_true",
        help="audit simulator invariants after every cell (MCQ FSMs, HBT "
        "occupancy, BWB hints, pointer round-trips, shadow bounds); silent "
        "corruption becomes a first-class invariant-violation",
    )
    sup.add_argument(
        "--cell-deadline", type=float, default=None, metavar="SECONDS",
        help="supervised per-cell wall-clock deadline (default 60)",
    )
    sup.add_argument(
        "--cell-retries", type=int, default=None, metavar="N",
        help="supervised retries per cell before quarantine (default 2)",
    )
    sup.add_argument(
        "--inject-hang", nargs="?", const="*:*:ptr-pac-flip:0", default=None,
        metavar="WL:MECH:KIND:LOC",
        help="faultinject only: make matching cells hang (wildcard '*'), to "
        "exercise hang detection end-to-end; implies --supervise "
        "(default pattern when bare: *:*:ptr-pac-flip:0)",
    )
    return parser


def supervisor_config(args) -> "SupervisorConfig | None":
    """Build the :class:`SupervisorConfig` the CLI flags describe."""
    if not (args.supervise or args.inject_hang):
        return None
    from .supervise import RetryPolicy, SupervisorConfig

    retry = RetryPolicy()
    if args.cell_retries is not None:
        retry = RetryPolicy(max_retries=args.cell_retries, seed=args.seed)
    kwargs = {"jobs": max(1, args.jobs), "retry": retry}
    if args.cell_deadline is not None:
        kwargs["deadline_s"] = args.cell_deadline
    return SupervisorConfig(**kwargs)


def campaign_config_from_args(args) -> "CampaignConfig":
    """The :class:`CampaignConfig` the faultinject/serve flags describe."""
    from .faults import CampaignConfig

    overrides = {}
    if args.workloads:
        overrides["workloads"] = tuple(args.workloads)
    if args.mechanisms:
        overrides["mechanisms"] = tuple(args.mechanisms)
    if args.fault_locations is not None:
        overrides["locations"] = args.fault_locations
    if args.fault_timeout is not None:
        overrides["timeout_s"] = args.fault_timeout
    if args.fault_kinds:
        from .faults import parse_fault_kind

        overrides["kinds"] = tuple(
            parse_fault_kind(value) for value in args.fault_kinds
        )
    overrides["seed"] = args.seed
    overrides["paranoid"] = args.paranoid
    if args.inject_hang:
        overrides["hang_cells"] = (args.inject_hang,)
    if getattr(args, "fault_quick", args.quick):
        return CampaignConfig.quick(**overrides)
    return CampaignConfig(**overrides)


def run_artifact(name: str, suite: ExperimentSuite, args) -> str:
    if name == "fig11":
        return run_fig11(n=args.pac_samples).format()
    if name == "fig14":
        return run_fig14(suite, workloads=args.workloads).format()
    if name == "fig15":
        return run_fig15(suite, workloads=args.workloads).format()
    if name == "fig16":
        return run_fig16(suite, workloads=args.workloads).format()
    if name == "fig17":
        return run_fig17(suite, workloads=args.workloads).format()
    if name == "fig18":
        return run_fig18(suite, workloads=args.workloads).format()
    if name == "table1":
        return run_table1().format() + "\n\n" + run_table4().format()
    if name == "table2":
        return run_table2().format()
    if name == "table3":
        return run_table3().format()
    if name == "security":
        return run_security_analysis().format_table()
    if name == "mechanisms":
        return format_mechanism_table()
    if name == "mte":
        from .experiments.extended import run_extended_comparison

        return run_extended_comparison(suite, workloads=args.workloads).format()
    if name == "faultinject":
        from .faults import Campaign

        campaign = Campaign(
            campaign_config_from_args(args), checkpoint=args.fault_checkpoint
        )
        result = campaign.run(jobs=args.jobs, supervise=supervisor_config(args))
        report = result.format_report()
        if result.supervision is not None:
            from .stats import SupervisionSummary

            report += "\n\n" + SupervisionSummary.from_report(result.supervision).format()
        return report
    if name == "ablations":
        parts = [
            ablation_bwb(suite).format(),
            ablation_mcq(suite).format(),
            ablation_resize(suite).format(),
            ablation_forwarding(suite).format(),
            ablation_quarantine(suite).format(),
            ablation_entropy().format(),
        ]
        return "\n\n".join(parts)
    raise ValueError(f"unknown artifact {name!r}")


def run_trace(args, profiler: PhaseProfiler) -> str:
    """The ``trace`` artifact: one observed run -> Chrome trace + metrics.

    Everything written derives from simulated state only (cycle stamps,
    event/metric counts — never wall clock or PIDs), so both output files
    are byte-identical across runs at the same settings and seed.
    """
    import json

    from .compiler import lower_trace
    from .cpu.core import Simulator
    from .experiments.common import scaled_config
    from .obs import (
        DEFAULT_TRACE_CAPACITY,
        EventTracer,
        Observability,
        dump_chrome_trace,
        validate_chrome_trace_file,
    )
    from .workloads import generate_trace, get_profile

    workload = args.target or "gcc"
    capacity = args.trace_capacity or DEFAULT_TRACE_CAPACITY
    trace_out = args.trace_out or "trace.json"
    metrics_out = args.metrics_out or "metrics.json"

    obs = Observability(tracer=EventTracer(capacity))
    config = scaled_config(args.mechanism, args.scale)
    with profiler.phase("trace-gen"):
        trace = generate_trace(
            get_profile(workload),
            instructions=args.instructions,
            seed=args.seed,
            scale=args.scale,
        )
    with profiler.phase("lower"):
        lowered = lower_trace(trace, args.mechanism, config=config)
    with profiler.phase("simulate"):
        # The trace artifact needs the event ring, which only the reference
        # kernel feeds; Simulator routes traced runs there regardless of
        # --kernel, so pass the flag through for the untraced portions.
        result = Simulator(config, obs=obs, kernel=args.kernel).run(lowered)
    with profiler.phase("report"):
        tracer = obs.tracer
        dump_chrome_trace(
            trace_out,
            tracer.events(),
            metadata={
                "workload": workload,
                "mechanism": args.mechanism,
                "instructions": args.instructions,
                "seed": args.seed,
                "scale": args.scale,
                "events_emitted": tracer.stats.emitted,
                "events_dropped": tracer.stats.dropped,
            },
        )
        with open(metrics_out, "w", encoding="utf-8") as fh:
            json.dump(result.metrics, fh, sort_keys=True, indent=1)
            fh.write("\n")
        if args.events_out:
            tracer.to_jsonl(args.events_out)

    problems = validate_chrome_trace_file(trace_out)
    lines = [
        f"traced {workload}/{args.mechanism}: {result.instructions} "
        f"instructions, {result.cycles:.0f} cycles (IPC {result.ipc:.2f})",
        f"events: {tracer.stats.emitted} emitted, "
        f"{tracer.stats.dropped} dropped, {len(tracer)} retained",
        f"chrome trace -> {trace_out} "
        + ("(schema OK)" if not problems else f"(SCHEMA PROBLEMS: {problems[:3]})"),
        f"metrics      -> {metrics_out} "
        f"({len(result.metrics.get('counters', {}))} counters, "
        f"{len(result.metrics.get('gauges', {}))} gauges, "
        f"{len(result.metrics.get('histograms', {}))} histograms)",
    ]
    if args.events_out:
        lines.append(f"events jsonl -> {args.events_out}")
    lines.append("open the trace in https://ui.perfetto.dev ('Open trace file')")
    return "\n".join(lines)


def run_trace_export(args) -> int:
    """The ``trace-export`` artifact: synthetic window -> trace file.

    The exported file embeds the full workload profile and generator
    provenance, so ``trace-import --verify-roundtrip`` can regenerate the
    source and prove the export/import cycle byte-identical.
    """
    from .errors import WorkloadError
    from .traces import export_workload, trace_digest
    from .workloads import get_profile

    workload = args.target or "gcc"
    try:
        get_profile(workload)
    except (KeyError, WorkloadError):
        print(f"repro: error: unknown workload {workload!r}", file=sys.stderr)
        return 2
    extension = "jsonl" if args.trace_format == "jsonl" else "bin"
    path = args.trace_file or f"{workload}.trace.{extension}"
    trace = export_workload(
        workload,
        path,
        format=args.trace_format,
        instructions=args.instructions,
        seed=args.seed,
        scale=args.scale,
    )
    import os

    print(
        f"exported {workload} (instructions={args.instructions} "
        f"seed={args.seed} scale={args.scale}) -> {path}"
    )
    print(
        f"  {len(trace.preamble)} preamble objects + {len(trace.events)} "
        f"events, {os.path.getsize(path)} bytes ({args.trace_format})"
    )
    print(f"  sha256: {trace_digest(path)}")
    return 0


def run_trace_import(args, profiler: PhaseProfiler) -> int:
    """The ``trace-import`` artifact: trace file -> validated simulation.

    Streams the file once to validate + summarise it (any schema
    violation exits 2 with the named ``TraceFormatError``), then simulates
    it under ``--mechanism`` with the artifact cache keyed on the trace's
    sha256 digest.  ``--verify-roundtrip`` additionally regenerates the
    synthetic source recorded in the header and asserts byte-identical
    results on both kernels (exit 1 on divergence).
    """
    import dataclasses
    import hashlib
    import json

    from .errors import TraceFormatError
    from .traces import scan_trace

    if not args.target:
        print("repro: error: trace-import requires a trace file", file=sys.stderr)
        return 2
    try:
        with profiler.phase("scan"):
            stats = scan_trace(args.target)
    except FileNotFoundError:
        print(f"repro: error: no such trace file: {args.target}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(
            f"repro: error: {type(exc).__name__}: {exc}", file=sys.stderr
        )
        return 2
    print(stats.format_summary())

    suite = ExperimentSuite(
        RunSettings(
            instructions=args.instructions,
            seed=args.seed,
            scale=args.scale,
            kernel=args.kernel,
            guard_inject=args.guard_inject,
        ),
        jobs=args.jobs,
        cache=artifact_cache_from_args(args),
        batch=args.batch,
    )
    with profiler.phase("simulate"):
        name = suite.ingest_trace(args.target)
        result = suite.result(name, args.mechanism)
        line = (
            f"simulated {name} under {args.mechanism} ({args.kernel} kernel): "
            f"{result.instructions} instructions, {result.cycles:.0f} cycles "
            f"(IPC {result.ipc:.2f})"
        )
        if args.mechanism != "baseline":
            line += f", {suite.normalized_time(name, args.mechanism):.3f}x baseline"
        print(line)
    payload = json.dumps(
        dataclasses.asdict(result), sort_keys=True, separators=(",", ":")
    )
    print(f"result-digest: {hashlib.sha256(payload.encode()).hexdigest()}")

    code = 0
    if args.verify_roundtrip:
        code = _verify_roundtrip(args, stats, profiler)
    if suite.cache is not None:
        cache_stats = suite.cache.stats
        print(
            f"[artifact cache: {cache_stats.hits} hits, "
            f"{cache_stats.misses} misses, {cache_stats.stores} stores]"
        )
    return code


def _verify_roundtrip(args, stats, profiler: PhaseProfiler) -> int:
    """Prove simulate(generate(p)) == simulate(import(record(p))) for the
    ingested file, on both kernels.  Needs trace-export provenance."""
    import dataclasses

    from .compiler import lower_trace
    from .cpu.core import Simulator
    from .experiments.common import scaled_config
    from .kernel import KERNELS
    from .traces import import_trace
    from .workloads import generate_trace, get_profile

    generator = stats.header.generator or {}
    if generator.get("source") != "synthetic":
        print(
            "repro: error: --verify-roundtrip needs a trace produced by "
            "trace-export (no synthetic generator provenance in the header)",
            file=sys.stderr,
        )
        return 2
    with profiler.phase("verify-roundtrip"):
        regenerated = generate_trace(
            get_profile(generator["workload"]),
            instructions=generator["instructions"],
            seed=generator["seed"],
            scale=generator["scale"],
        )
        imported = import_trace(args.target)
        if imported != regenerated:
            print(
                "round-trip: FAILED — imported trace differs from the "
                "regenerated synthetic source",
                file=sys.stderr,
            )
            return 1
        config = scaled_config(args.mechanism, regenerated.scale)
        for kernel in KERNELS:
            direct = Simulator(config, kernel=kernel).run(
                lower_trace(regenerated, args.mechanism, config=config)
            )
            ingested = Simulator(config, kernel=kernel).run(
                lower_trace(imported, args.mechanism, config=config)
            )
            if dataclasses.asdict(direct) != dataclasses.asdict(ingested):
                print(
                    f"round-trip: FAILED — {kernel} kernel results diverge "
                    "between generated and ingested traces",
                    file=sys.stderr,
                )
                return 1
    print(
        "round-trip: byte-identical (trace equality + "
        f"{'/'.join(KERNELS)} kernel results)"
    )
    return 0


def format_mechanism_table() -> str:
    """Human-readable registry listing (the default ``mechanisms`` output)."""
    from .mechanisms import REGISTRY, registry_fingerprint

    rows = []
    for spec in REGISTRY.specs():
        rows.append(
            f"  {spec.name:<10s} lowering={spec.lowering or '-':<9s} "
            f"kernel={'yes' if spec.kernel else 'no ':<3s} {spec.description}"
        )
    return "\n".join(
        [f"registered mechanisms ({len(rows)}), registry order:"]
        + rows
        + [f"registry fingerprint: {registry_fingerprint()}"]
    )


def run_mechanisms(args) -> int:
    """The ``mechanisms`` artifact: enumerate the plugin registry.

    ``--list`` feeds CI matrix generation, ``--fingerprint`` keys the CI
    artifact cache, ``--json`` gives both plus the full spec metadata.
    """
    import json

    from .mechanisms import REGISTRY, registry_fingerprint

    if args.mech_fingerprint:
        print(registry_fingerprint())
        return 0
    if args.mech_list:
        for name in REGISTRY.names():
            print(name)
        return 0
    if args.mech_json:
        payload = {
            "kind": "mechanism-registry",
            "fingerprint": registry_fingerprint(),
            "mechanisms": [
                {
                    "name": spec.name,
                    "description": spec.description,
                    "paper": spec.paper,
                    "lowering": spec.lowering,
                    "kernel": spec.kernel,
                    "cache_token": spec.cache_token,
                    "detects": [exc.__name__ for exc in spec.detects],
                    "hwcost": dict(spec.hwcost),
                }
                for spec in REGISTRY.specs()
            ],
        }
        print(json.dumps(payload, sort_keys=True, indent=1))
        return 0
    print(format_mechanism_table())
    return 0


def run_attack(args, profiler: PhaseProfiler) -> int:
    """The ``attack`` artifact: chaos campaign over the scenario corpus.

    Returns the process exit code: non-zero when any MUST_DETECT cell
    went undetected (the acceptance contract), zero otherwise — known
    escapes (reported by name) and robustness bugs are findings, not
    failures.
    """
    import json

    from .adversary import ChaosCampaign, ChaosConfig
    from .stats import ScenarioCoverage

    overrides = {"seed": args.seed}
    if args.scenarios:
        overrides["scenarios"] = tuple(args.scenarios)
    if args.mechanisms:
        overrides["mechanisms"] = tuple(args.mechanisms)
    if args.fault_timeout is not None:
        overrides["timeout_s"] = args.fault_timeout
    if args.quick:
        config = ChaosConfig.quick(**overrides)
    else:
        config = ChaosConfig(**overrides)

    # Supervision is the default for chaos campaigns: a scenario that
    # wedges the simulator must land as a quarantined robustness bug, not
    # hang the sweep.  ``--no-supervise`` opts into a plain serial run.
    supervise = None
    if not args.no_supervise:
        args.supervise = True
        supervise = supervisor_config(args)

    with profiler.phase("attack"):
        matrix = ChaosCampaign(config).run(supervise=supervise, jobs=args.jobs)
    print(matrix.format_report())

    payload = matrix.to_payload()
    if args.pareto:
        from .experiments import run_security_pareto

        coverage = ScenarioCoverage.from_matrix(matrix)
        suite = ExperimentSuite(
            RunSettings(
                instructions=args.instructions,
                seed=args.seed,
                scale=args.scale,
                kernel=args.kernel,
                guard_inject=args.guard_inject,
            ),
            jobs=args.jobs,
            cache=artifact_cache_from_args(args),
            batch=args.batch,
        )
        with profiler.phase("pareto"):
            pareto = run_security_pareto(
                coverage, suite, workloads=args.workloads
            )
        print()
        print(pareto.format())
        payload["pareto"] = pareto.to_payload()
    if args.matrix_out:
        with open(args.matrix_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
            fh.write("\n")
        print(f"[scenario matrix -> {args.matrix_out}]")
    if not matrix.ok:
        failures = matrix.must_detect_failures()
        print(
            f"ATTACK CAMPAIGN FAILED: {len(failures)} must-detect "
            "scenario(s) went undetected",
            file=sys.stderr,
        )
        return 1
    return 0


def artifact_cache_from_args(args):
    """The :class:`ArtifactCache` the cache flags describe (None = off)."""
    if args.no_cache:
        return None
    from .experiments.backends import make_backend
    from .experiments.parallel import ArtifactCache

    root = args.cache_dir or default_cache_dir()
    return ArtifactCache(
        backend=make_backend(args.cache_backend, root),
        max_bytes=args.cache_max_bytes,
    )


def run_cache(args) -> int:
    """The ``cache`` artifact: inspect or prune the artifact store."""
    cache = artifact_cache_from_args(args)
    if cache is None:
        print("repro: error: cache --no-cache is contradictory", file=sys.stderr)
        return 2
    if args.cache_prune:
        if cache.max_bytes is None:
            print(
                "repro: error: cache --prune needs a cap: pass "
                "--cache-max-bytes N or set $REPRO_CACHE_MAX_BYTES",
                file=sys.stderr,
            )
            return 2
        report = cache.prune()
        print(report.format())
        return 0
    # --stats is the default action (and the explicit flag's).
    usage = cache.usage()
    lines = [f"artifact cache: {usage['backend']}"]
    cap = usage["max_bytes"]
    lines.append(
        f"  entries: {usage['entries']}  bytes: {usage['bytes']}"
        + (f"  cap: {cap}" if cap is not None else "  cap: unlimited")
    )
    for kind, stats in sorted(usage["kinds"].items()):
        lines.append(
            f"  {kind}: {stats['entries']} entries, {stats['bytes']} bytes"
        )
    dedup = usage.get("dedup")
    if dedup:
        lines.append(
            f"  dedup: {dedup['refs']} refs -> {dedup['objects']} objects, "
            f"{dedup['deduped_bytes']} bytes saved"
        )
    print("\n".join(lines))
    return 0


def _worker_cache_from_args(args):
    """Workers cache cell results only when a store is explicitly named
    (the queue database is already durable; the artifact store adds
    cross-campaign and cross-user reuse on top)."""
    if args.no_cache or not (args.cache_dir or args.cache_backend != "local"):
        return None
    return artifact_cache_from_args(args)


def run_worker(args) -> int:
    """The ``worker`` artifact: one lease-based queue worker process."""
    from .queue import WorkerConfig, worker_main

    if not args.queue:
        print("repro: error: worker requires --queue DIR", file=sys.stderr)
        return 2
    kill_after = None
    clock_skew = 0.0
    if args.queue_fault:
        from .faults import QueueFaultKind, parse_queue_fault_kind

        fault = parse_queue_fault_kind(args.queue_fault)
        if fault is QueueFaultKind.WORKER_KILL:
            kill_after = args.kill_after_cells if args.kill_after_cells else 2
        elif fault is QueueFaultKind.LEASE_CLOCK_SKEW:
            clock_skew = args.clock_skew if args.clock_skew is not None else -30.0
    if args.kill_after_cells is not None:
        kill_after = args.kill_after_cells
    if args.clock_skew is not None:
        clock_skew = args.clock_skew
    config = WorkerConfig(
        queue_root=args.queue,
        worker_id=args.worker_id or "",
        batch=args.claim_batch,
        lease_ttl_s=args.lease_ttl,
        heartbeat_timeout_s=args.worker_heartbeat_timeout,
        kill_after_cells=kill_after,
        clock_skew_s=clock_skew,
    )
    return worker_main(config, cache=_worker_cache_from_args(args))


def run_serve(args) -> int:
    """The ``serve`` artifact: coordinate a distributed campaign.

    Exit codes: 0 on a completed campaign, 130 after a graceful drain
    (resumable by re-running the same command), 1 when ``--verify-serial``
    finds a divergence from the serial path.
    """
    from .queue import (
        CampaignService,
        ServiceConfig,
        enqueue_campaign,
        verify_against_serial,
    )

    if not args.queue:
        print("repro: error: serve requires --queue DIR", file=sys.stderr)
        return 2
    config = campaign_config_from_args(args)
    kill_after = None
    clock_skew = 0.0
    if args.queue_fault:
        from .faults import QueueFaultKind, parse_queue_fault_kind

        fault = parse_queue_fault_kind(args.queue_fault)
        if fault is QueueFaultKind.WORKER_KILL:
            kill_after = args.kill_after_cells if args.kill_after_cells else 2
        elif fault is QueueFaultKind.LEASE_CLOCK_SKEW:
            clock_skew = args.clock_skew if args.clock_skew is not None else -30.0
    worker_args: List[str] = []
    if args.no_cache:
        worker_args.append("--no-cache")
    else:
        if args.cache_dir:
            worker_args += ["--cache-dir", args.cache_dir]
        if args.cache_backend != "local":
            worker_args += ["--cache-backend", args.cache_backend]
    service = CampaignService(
        ServiceConfig(
            queue_root=args.queue,
            workers=max(1, args.queue_workers),
            batch=args.claim_batch,
            lease_ttl_s=args.lease_ttl,
            heartbeat_timeout_s=args.worker_heartbeat_timeout,
            worker_args=tuple(worker_args),
            kill_worker_after_cells=kill_after,
            clock_skew_s=clock_skew,
        )
    )
    added = enqueue_campaign(
        service.queue,
        args.campaign_id,
        config,
        priority=args.priority,
        weight=args.weight,
    )
    counts = service.queue.counts(args.campaign_id)
    print(
        f"[serve] campaign {args.campaign_id!r}: {added} cell(s) enqueued, "
        f"{counts.done} already done, {counts.total} total "
        f"({args.queue_workers} workers over {args.queue})",
        flush=True,
    )
    if args.queue_fault:
        detail = (
            f"kill after {kill_after} cell(s)"
            if kill_after is not None
            else f"clock skew {clock_skew:+.1f}s"
        )
        print(f"[serve] queue-fault injection: {args.queue_fault} ({detail})")
    service.install_signal_handlers()
    report = service.run([args.campaign_id])
    print(report.format())
    result = report.results[args.campaign_id]
    if report.drained:
        print(
            "[serve] drained — completed cells are durable in the queue; "
            "re-run the same command to resume",
            flush=True,
        )
        return 130
    charged = sum(
        attempts
        for _state, attempts in service.queue.job_states(args.campaign_id).values()
    )
    print(
        f"[serve] recovery: {len(report.reclaims)} coordinator reclaim(s), "
        f"{charged} attempt charge(s) across cells",
        flush=True,
    )
    print()
    print(result.format_report())
    if args.verify_serial:
        mismatch = verify_against_serial(config, result)
        if mismatch is None:
            print("serial-equivalence: OK")
        else:
            print(f"serial-equivalence: MISMATCH — {mismatch}", file=sys.stderr)
            return 1
    return 0


#: The ``--quick`` timing subset: cheap but behaviourally distinct, and it
#: keeps gcc — the paper's worst-case AOS workload — in every smoke run.
QUICK_WORKLOADS = ["gcc", "povray", "gobmk"]


def _resume_hint(args) -> str:
    """What an interrupted user should know: state is flushed, how to resume."""
    lines = [
        "interrupted — completed cells are already flushed "
        "(crash-atomic checkpoint/cache writes; nothing to salvage by waiting)."
    ]
    if args.fault_checkpoint:
        lines.append(
            f"re-run the same command to resume from {args.fault_checkpoint}"
        )
    elif args.artifact == "faultinject":
        lines.append(
            "add --fault-checkpoint PATH to make campaign runs resumable"
        )
    if not args.no_cache:
        lines.append(
            "finished simulation cells are in the artifact cache; "
            "a re-run recomputes only what was in flight"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profiler = PhaseProfiler()

    if args.artifact == "mechanisms":
        return run_mechanisms(args)

    # Strict mechanism-name validation up front (mirrors parse_fault_kind):
    # a typo gets the full list of registered names, never a bare KeyError
    # from deep inside a sweep.
    from .mechanisms import UnknownMechanismError, parse_mechanism, parse_mechanisms

    try:
        args.mechanism = parse_mechanism(args.mechanism)
        if args.mechanisms:
            args.mechanisms = parse_mechanisms(args.mechanisms)
    except UnknownMechanismError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    if args.quick:
        args.workloads = args.workloads or list(QUICK_WORKLOADS)
        args.instructions = min(args.instructions, 12_000)
        args.pac_samples = min(args.pac_samples, 1 << 16)
    # ``all`` always bounds its faultinject leg, even without ``--quick``.
    args.fault_quick = args.quick or args.artifact == "all"

    if args.artifact == "cache":
        return run_cache(args)
    if args.artifact == "worker":
        return run_worker(args)
    if args.artifact == "serve":
        try:
            return run_serve(args)
        except KeyboardInterrupt:
            print(_resume_hint(args), file=sys.stderr)
            return 130

    if args.artifact == "trace-export":
        return run_trace_export(args)
    if args.artifact == "trace-import":
        try:
            with trap_signals():
                code = run_trace_import(args, profiler)
        except KeyboardInterrupt:
            print(_resume_hint(args), file=sys.stderr)
            return 130
        if args.profile:
            print()
            print(profiler.format())
        return code

    if args.artifact == "trace":
        try:
            with trap_signals():
                print(run_trace(args, profiler))
        except KeyboardInterrupt:
            print(_resume_hint(args), file=sys.stderr)
            return 130
        if args.profile:
            print()
            print(profiler.format())
        return 0

    # ``attack`` owns its exit code (non-zero on missed must-detects), so
    # it bypasses the always-0 artifact loop like ``trace`` does.
    if args.artifact == "attack":
        try:
            with trap_signals():
                code = run_attack(args, profiler)
        except KeyboardInterrupt:
            print(_resume_hint(args), file=sys.stderr)
            return 130
        if args.profile:
            print()
            print(profiler.format())
        return code

    suite = ExperimentSuite(
        RunSettings(
            instructions=args.instructions,
            seed=args.seed,
            scale=args.scale,
            # Metric sweeps collect counters only (no event ring): cheaper,
            # and keeps cell results JSON-able for the cache/checkpoint.
            obs=ObsSettings(enabled=True, tracing=False)
            if args.metrics
            else ObsSettings(),
            kernel=args.kernel,
            guard_inject=args.guard_inject,
        ),
        jobs=args.jobs,
        cache=artifact_cache_from_args(args),
        supervise=supervisor_config(args),
        paranoid=args.paranoid,
        batch=args.batch,
    )
    if args.trace:
        from .errors import TraceFormatError

        try:
            ingested = suite.ingest_trace(args.trace)
        except FileNotFoundError:
            print(
                f"repro: error: no such trace file: {args.trace}", file=sys.stderr
            )
            return 2
        except TraceFormatError as exc:
            print(f"repro: error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 2
        args.workloads = [ingested]
        print(f"[ingested trace {args.trace} as workload {ingested!r}]")
    names = (
        [n for n in ARTIFACTS if n not in OPERATIONAL_ARTIFACTS]
        if args.artifact == "all"
        else [args.artifact]
    )
    try:
        # SIGTERM lands as KeyboardInterrupt, so a killed run flushes and
        # prints the same resume hint as a ^C one.
        with trap_signals():
            for name in names:
                start = time.time()
                with profiler.phase(name):
                    print(run_artifact(name, suite, args))
                print(f"[{name}: {time.time() - start:.1f}s]\n")
    except KeyboardInterrupt:
        print(_resume_hint(args), file=sys.stderr)
        return 130
    for report in suite.supervision_reports:
        print(report.format())
        print()
    if args.metrics:
        from .stats import MetricsReport

        snapshot = suite.metrics_snapshot()
        print(MetricsReport(snapshot, title="suite metrics (merged cells)").format())
        print()
        if args.metrics_out:
            import json

            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, sort_keys=True, indent=1)
                fh.write("\n")
            print(f"[metrics -> {args.metrics_out}]")
    if suite.cache is not None:
        stats = suite.cache.stats
        print(
            f"[artifact cache @ {suite.cache.root or suite.cache.backend.describe()}: "
            f"{stats.hits} hits, "
            f"{stats.misses} misses, {stats.stores} stores]"
        )
    if args.profile:
        print(profiler.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Extended mechanism comparison: Fig. 14's set plus memory tagging (§X).

The paper compares AOS against Watchdog and PA in Fig. 14 and argues
*qualitatively* against memory tagging in §X ("moderate performance
overhead ... limited size of tags reduces security guarantees").  This
extension quantifies that comparison on the same workloads: an MTE-style
lowering (tag colouring at malloc/free, free per-access checks) next to
the Fig. 14 mechanisms, alongside the security trade-off from
:mod:`repro.security.entropy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..security.entropy import attempts_for_likelihood, single_shot_detection
from ..stats.report import TableFormatter, geomean
from .common import ExperimentSuite, SPEC_WORKLOADS
from .parallel import CellSpec

MECHANISMS = ["mte", "aos", "pa+aos"]


@dataclass
class ExtendedComparisonResult:
    #: workload -> mechanism -> normalized execution time.
    rows: Dict[str, Dict[str, float]]
    geomeans: Dict[str, float]

    def format(self) -> str:
        table = TableFormatter(MECHANISMS)
        for workload, values in self.rows.items():
            table.add_row(workload, values)
        table.add_row("Geomean", self.geomeans)
        security = (
            "\nSecurity trade-off: MTE 4-bit tags detect "
            f"{single_shot_detection(4):.1%} of violations per attempt "
            f"(bypass ~{attempts_for_likelihood(4, 0.5)} tries); AOS 16-bit "
            f"PACs detect {single_shot_detection(16):.3%} "
            f"(bypass ~{attempts_for_likelihood(16, 0.5)} tries, §VII-E)."
        )
        return (
            "Extended comparison — memory tagging (§X) vs AOS\n"
            + table.render()
            + security
        )


def run_extended_comparison(
    suite: Optional[ExperimentSuite] = None,
    workloads: Optional[List[str]] = None,
) -> ExtendedComparisonResult:
    suite = suite or ExperimentSuite()
    workloads = workloads or SPEC_WORKLOADS
    suite.ensure_cells(
        CellSpec(workload, mechanism)
        for workload in workloads
        for mechanism in ["baseline"] + MECHANISMS
    )
    rows: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        rows[workload] = {
            mech: suite.normalized_time(workload, mech) for mech in MECHANISMS
        }
    geomeans = {
        mech: geomean([rows[w][mech] for w in workloads]) for mech in MECHANISMS
    }
    return ExtendedComparisonResult(rows=rows, geomeans=geomeans)

"""Tables I-IV of the paper.

- **Table I**: hardware overhead of the AOS structures (CACTI-style model).
- **Table II**: SPEC 2006 memory-usage profiles — reported from the
  profiles (which carry the paper's published numbers verbatim) together
  with the *simulated window's* measured allocator statistics, so the
  reproduction can show that the synthetic workloads honour the published
  behaviour (max-active ratios, allocation/deallocation balance).
- **Table III**: the same for the real-world benchmarks.
- **Table IV**: the simulation parameters in force.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import SystemConfig, default_config
from ..hwcost.cacti import PUBLISHED_TABLE1, estimate_table1
from ..stats.report import TableFormatter
from ..workloads.profiles import REALWORLD_PROFILES, SPEC2006_PROFILES


@dataclass
class Table1Result:
    estimated: Dict[str, Dict[str, float]]

    def format(self) -> str:
        columns = ["size", "area mm2", "ns", "pJ", "mW"]
        table = TableFormatter(columns)
        for name, row in self.estimated.items():
            published = PUBLISHED_TABLE1.get(name)
            table.add_row(
                name,
                {
                    "size": f"{row['size_bytes'] / 1024:.2g}KB",
                    "area mm2": row["area_mm2"],
                    "ns": row["access_ns"],
                    "pJ": row["dynamic_pj"],
                    "mW": row["leakage_mw"],
                },
                fmt="{:.4f}",
            )
            if published:
                table.add_row(
                    "  (paper)",
                    {
                        "size": f"{published[0] / 1024:.2g}KB",
                        "area mm2": published[1],
                        "ns": published[2],
                        "pJ": published[3],
                        "mW": published[4],
                    },
                    fmt="{:.4f}",
                )
        return "Table I — Hardware overhead (CACTI-style model @45nm)\n" + table.render()


def run_table1(config: Optional[SystemConfig] = None) -> Table1Result:
    return Table1Result(estimated=estimate_table1(config or default_config()))


@dataclass
class MemoryProfileRow:
    name: str
    max_active: int
    allocations: int
    deallocations: int


@dataclass
class Table23Result:
    title: str
    rows: List[MemoryProfileRow]

    def format(self) -> str:
        table = TableFormatter(["Max Active", "# Allocation", "Deallocation"], col_width=14)
        for row in self.rows:
            table.add_row(
                row.name,
                {
                    "Max Active": row.max_active,
                    "# Allocation": row.allocations,
                    "Deallocation": row.deallocations,
                },
            )
        return f"{self.title}\n" + table.render()


def run_table2() -> Table23Result:
    """Table II: SPEC 2006 memory-usage profiles (published values)."""
    rows = [
        MemoryProfileRow(
            name=p.name,
            max_active=p.table_max_active,
            allocations=p.table_allocations,
            deallocations=p.table_deallocations,
        )
        for p in SPEC2006_PROFILES.values()
    ]
    return Table23Result(title="Table II — SPEC 2006 memory usage profiles", rows=rows)


def run_table3() -> Table23Result:
    """Table III: real-world benchmark memory-usage profiles."""
    rows = [
        MemoryProfileRow(
            name=p.name,
            max_active=p.table_max_active,
            allocations=p.table_allocations,
            deallocations=p.table_deallocations,
        )
        for p in REALWORLD_PROFILES.values()
    ]
    return Table23Result(title="Table III — Real-world benchmark profiles", rows=rows)


@dataclass
class Table4Result:
    config: SystemConfig

    def format(self) -> str:
        c = self.config
        rows = [
            ("Core", f"{c.core.frequency_ghz:.0f}GHz, {c.core.width}-wide, out-of-order, "
                     f"{c.core.load_queue_entries}-entry LQ/SQ, {c.core.rob_entries} ROB, "
                     f"{c.core.mcq_entries} MCQ"),
            ("L1-I", f"{c.memory.l1i.size_bytes // 1024}KB, {c.memory.l1i.assoc}-way, "
                     f"{c.memory.l1i.hit_latency}-cycle"),
            ("L1-D", f"{c.memory.l1d.size_bytes // 1024}KB, {c.memory.l1d.assoc}-way, "
                     f"{c.memory.l1d.hit_latency}-cycle"),
            ("L1-B", f"{c.memory.l1b.size_bytes // 1024}KB, {c.memory.l1b.assoc}-way, "
                     f"{c.memory.l1b.hit_latency}-cycle"),
            ("L2", f"{c.memory.l2.size_bytes // (1024 * 1024)}MB, {c.memory.l2.assoc}-way, "
                   f"{c.memory.l2.hit_latency}-cycle"),
            ("DRAM", f"{c.memory.dram_latency}-cycle from L2, "
                     f"{c.memory.dram_bandwidth_gbs} GB/s"),
            ("Arm PA", f"{c.pa.pac_bits}-bit PAC, sign/auth {c.pa.sign_latency}-cycle, "
                       f"strip {c.pa.strip_latency}-cycle"),
            ("HBT", f"initial {c.hbt.initial_ways} way"),
            ("BWB", f"{c.bwb.entries} entries, {c.bwb.hit_latency}-cycle, "
                    f"{c.bwb.eviction.upper()}"),
        ]
        width = max(len(k) for k, _ in rows)
        lines = ["Table IV — Simulation parameters"]
        lines += [f"  {k:{width}s}  {v}" for k, v in rows]
        return "\n".join(lines)


def run_table4(config: Optional[SystemConfig] = None) -> Table4Result:
    return Table4Result(config=config or default_config())

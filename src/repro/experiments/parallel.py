"""Parallel experiment engine and persistent cross-session artifact cache.

The serial :class:`~repro.experiments.common.ExperimentSuite` computes its
16-workload x 5-mechanism sweep one cell at a time in one process and, unless
a checkpoint path is passed, forgets everything when the session ends.  This
module adds the two missing layers:

**Parallel execution** — :func:`run_cells` shards independent
(workload, mechanism) simulation cells across a ``ProcessPoolExecutor``.
Every cell is described by a picklable :class:`CellSpec`; each worker builds
its own trace, lowering and :class:`~repro.cpu.core.Simulator` from the
:class:`~repro.experiments.common.RunSettings` fingerprint via
:func:`simulate_cell` — the same pure function the serial path uses — so
parallel results are bit-identical to serial ones and merge back into the
suite's memo/checkpoint in deterministic cell order regardless of worker
completion order.

**Persistent artifact cache** — :class:`ArtifactCache` stores generated
traces and :class:`~repro.cpu.core.SimulationResult` payloads under
``~/.cache/repro`` (or ``$REPRO_CACHE_DIR``, or an explicit ``--cache-dir``),
keyed by a content hash of the run settings, workload profile, mechanism,
system configuration and a digest of the package sources.  A second
``python -m repro all`` on the same code therefore re-simulates nothing, and
any code change invalidates every stale entry automatically.  Corrupted
cache files are treated as misses and removed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..compiler import lower_trace
from ..config import SystemConfig
from ..cpu.core import SimulationResult, Simulator
from ..workloads import WorkloadTrace, generate_trace, get_profile
from .common import RunSettings, scaled_config

#: Bump to invalidate every cache entry independently of source digests.
CACHE_SCHEMA = 1


# --------------------------------------------------------------------- cells


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation cell of a sweep, fully picklable.

    ``key`` disambiguates cells that share a mechanism but differ in
    configuration (the Fig. 15 ``aos-l1b`` style variants); it defaults to
    the mechanism name, matching ``ExperimentSuite.result``'s memo keys.
    ``config=None`` means "the suite's scale-matched Table IV config".

    ``trace_path``/``trace_digest`` mark an *ingested* cell: the workload
    is a trace file (see :mod:`repro.traces`), not a synthetic profile.
    Workers re-import the file instead of regenerating from a profile,
    and the cache fingerprint is keyed on the streamed sha256 digest of
    the file's bytes rather than on profile/settings fingerprints.
    """

    workload: str
    mechanism: str
    config: Optional[SystemConfig] = None
    key: Optional[str] = None
    trace_path: Optional[str] = None
    trace_digest: Optional[str] = None
    #: The ingested trace's declared scale (header field); drives the
    #: scale-matched config instead of ``settings.scale`` for these cells.
    trace_scale: Optional[int] = None

    @property
    def cache_key(self) -> Tuple[str, str]:
        """The (workload, key-or-mechanism) memo key used by the suite."""
        return (self.workload, self.key or self.mechanism)

    def resolved_config(self, settings: RunSettings) -> SystemConfig:
        if self.config is not None:
            return self.config
        scale = self.trace_scale if self.trace_scale is not None else settings.scale
        return scaled_config(self.mechanism, scale)


def _code_digest() -> str:
    """Digest of every ``repro`` source file, so cache entries die with the
    code that produced them."""
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


_CODE_DIGEST: Optional[str] = None


def code_version() -> str:
    """The (memoised) source digest folded into every cache fingerprint."""
    global _CODE_DIGEST
    if _CODE_DIGEST is None:
        _CODE_DIGEST = _code_digest()
    return _CODE_DIGEST


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def trace_fingerprint(settings: RunSettings, workload: str) -> str:
    """Content hash naming one generated trace in the artifact cache."""
    profile = get_profile(workload)
    body = _canonical(
        {
            "schema": CACHE_SCHEMA,
            "code": code_version(),
            "kind": "trace",
            "profile": dataclasses.asdict(profile),
            "settings": dataclasses.asdict(settings),
        }
    )
    return hashlib.sha256(body.encode()).hexdigest()


def _mechanism_cache_token(mechanism: str) -> str:
    """The registry's cache-fingerprint token for ``mechanism``.

    Bumping a spec's ``cache_token`` (``<name>-v2``) invalidates every
    cached cell of that mechanism without touching the others; unregistered
    names (ablation ``key`` variants reuse real mechanisms, so this is
    rare) fall back to the bare name.
    """
    from ..mechanisms.registry import REGISTRY

    if mechanism in REGISTRY:
        return REGISTRY.spec(mechanism).cache_token
    return mechanism


def cell_fingerprint(settings: RunSettings, cell: CellSpec) -> str:
    """Content hash naming one simulation result in the artifact cache.

    Ingested cells (``cell.trace_digest`` set) are keyed on the trace
    file's streamed sha256 digest instead of the profile + window
    settings: the file's bytes fully determine the program, so the same
    trace imported under any alias or ``--instructions`` value hits the
    same cache entry, while settings that *do* change the result
    (configuration, observability, kernel) stay in the key.
    """
    config = cell.resolved_config(settings)
    if cell.trace_digest is not None:
        body = _canonical(
            {
                "schema": CACHE_SCHEMA,
                "code": code_version(),
                "kind": "result",
                "ingested": True,
                "trace_digest": cell.trace_digest,
                "mechanism": cell.mechanism,
                "mechanism_token": _mechanism_cache_token(cell.mechanism),
                "config": dataclasses.asdict(config),
                "obs": dataclasses.asdict(settings.obs),
                "kernel": settings.kernel,
            }
        )
        return hashlib.sha256(body.encode()).hexdigest()
    body = _canonical(
        {
            "schema": CACHE_SCHEMA,
            "code": code_version(),
            "kind": "result",
            "workload": cell.workload,
            "mechanism": cell.mechanism,
            "mechanism_token": _mechanism_cache_token(cell.mechanism),
            "profile": dataclasses.asdict(get_profile(cell.workload)),
            "config": dataclasses.asdict(config),
            "settings": dataclasses.asdict(settings),
        }
    )
    return hashlib.sha256(body.encode()).hexdigest()


# --------------------------------------------------------------------- cache


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def default_cache_max_bytes() -> Optional[int]:
    """``$REPRO_CACHE_MAX_BYTES`` as an int, or None (unbounded)."""
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evicted: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PruneReport:
    """What one :meth:`ArtifactCache.prune` pass did."""

    evicted: int = 0
    reclaimed_bytes: int = 0
    remaining_entries: int = 0
    remaining_bytes: int = 0
    #: Unreferenced blob bytes reclaimed by the shared store's GC pass.
    gc_bytes: int = 0

    def format(self) -> str:
        return (
            f"evicted {self.evicted} entries "
            f"({self.reclaimed_bytes + self.gc_bytes} bytes reclaimed, "
            f"{self.gc_bytes} via shared-store GC); "
            f"{self.remaining_entries} entries / "
            f"{self.remaining_bytes} bytes remain"
        )


class ArtifactCache:
    """Persistent, content-addressed store for traces and simulation results.

    Storage is a pluggable :class:`~repro.experiments.backends.CacheBackend`
    (local directory, in-memory, or a deduplicating shared store — see
    :mod:`repro.experiments.backends`); the default is the classic
    ``<root>/results/<sha256>.json`` + ``<root>/traces/<sha256>.pkl``
    per-user directory, byte-compatible with caches written by earlier
    versions.  Writes are atomic, so a killed run never leaves a torn
    entry; unreadable or undecodable entries are counted in
    :attr:`CacheStats.corrupt`, removed best-effort, and treated as misses.

    ``max_bytes`` (or ``$REPRO_CACHE_MAX_BYTES``) caps total size: after
    each store the least-recently-used entries (by backend ``used`` stamp)
    are evicted until the cache fits, so ``~/.cache/repro`` no longer
    grows without bound.  :meth:`prune` runs the same eviction on demand
    (``python -m repro cache --prune``).
    """

    def __init__(
        self,
        root: Union[None, str, Path] = None,
        backend: Optional["CacheBackend"] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        from .backends import CacheBackend, LocalDirBackend  # noqa: F811

        if backend is None:
            backend = LocalDirBackend(
                Path(root) if root is not None else default_cache_dir()
            )
        elif root is not None:
            raise ValueError("pass either root or backend, not both")
        self.backend: CacheBackend = backend
        #: Kept for callers that print/inspect the cache location; None
        #: for backends without one (memory).
        self.root: Optional[Path] = getattr(backend, "root", None)
        self.max_bytes = max_bytes if max_bytes is not None else default_cache_max_bytes()
        self.stats = CacheStats()

    # -------------------------------------------------------------- plumbing

    def _get(self, kind: str, fingerprint: str, decoder: Callable) -> Optional[object]:
        data = self.backend.read(kind, fingerprint)
        if data is None:
            self.stats.misses += 1
            return None
        try:
            value = decoder(data)
        except Exception:
            # Torn write, truncation, stale pickle protocol, wrong type...
            # anything undecodable is a miss; drop it so the rewrite
            # starts clean.
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.backend.remove(kind, fingerprint)
            return None
        self.stats.hits += 1
        return value

    def _put(self, kind: str, fingerprint: str, data: bytes) -> None:
        self.backend.write(kind, fingerprint, data)
        self.stats.stores += 1
        if self.max_bytes is not None:
            self.prune(self.max_bytes)

    # --------------------------------------------------------------- results

    def get_result(self, fingerprint: str) -> Optional[dict]:
        """The stored payload for ``fingerprint``, or None on (any) miss."""

        def decode(data: bytes) -> dict:
            value = json.loads(data)
            if not isinstance(value, dict):
                raise ValueError("result payload must be a JSON object")
            return value

        return self._get("results", fingerprint, decode)

    def put_result(self, fingerprint: str, payload: dict) -> None:
        self._put("results", fingerprint, json.dumps(payload, sort_keys=True).encode())

    # ---------------------------------------------------------------- traces

    def get_trace(self, fingerprint: str) -> Optional[WorkloadTrace]:
        def decode(data: bytes) -> WorkloadTrace:
            value = pickle.loads(data)
            if not isinstance(value, WorkloadTrace):
                raise ValueError("trace payload must be a WorkloadTrace")
            return value

        return self._get("traces", fingerprint, decode)

    def put_trace(self, fingerprint: str, trace: WorkloadTrace) -> None:
        self._put("traces", fingerprint, pickle.dumps(trace))

    # --------------------------------------------------------- maintenance

    def usage(self) -> Dict[str, object]:
        """Size/entry statistics, the ``repro cache --stats`` payload."""
        entries = self.backend.entries()
        by_kind: Dict[str, Dict[str, int]] = {}
        for entry in entries:
            bucket = by_kind.setdefault(entry.kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size
        usage: Dict[str, object] = {
            "backend": self.backend.describe(),
            "entries": len(entries),
            "bytes": sum(entry.size for entry in entries),
            "max_bytes": self.max_bytes,
            "kinds": {kind: by_kind[kind] for kind in sorted(by_kind)},
        }
        dedup = getattr(self.backend, "dedup_stats", None)
        if dedup is not None:
            usage["dedup"] = dedup()
        return usage

    def prune(self, max_bytes: Optional[int] = None) -> PruneReport:
        """Evict least-recently-used entries until the cache fits.

        ``max_bytes=None`` falls back to the instance cap; with neither
        set the call only runs the shared store's garbage collection (if
        any) and reports current usage.  ``max_bytes=0`` empties the
        cache.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        report = PruneReport()
        entries = self.backend.entries()
        total = sum(entry.size for entry in entries)
        if cap is not None and total > cap:
            # Oldest-used first; fingerprint tiebreak keeps eviction
            # order deterministic when stamps collide (coarse mtimes).
            for entry in sorted(entries, key=lambda e: (e.used, e.fingerprint)):
                if total <= cap:
                    break
                self.backend.remove(entry.kind, entry.fingerprint)
                total -= entry.size
                report.evicted += 1
                report.reclaimed_bytes += entry.size
            self.stats.evicted += report.evicted
        collect = getattr(self.backend, "collect_garbage", None)
        if collect is not None:
            report.gc_bytes = collect()
        remaining = self.backend.entries()
        report.remaining_entries = len(remaining)
        report.remaining_bytes = sum(entry.size for entry in remaining)
        return report

    # ------------------------------------------------------------------ misc

    def info(self) -> Dict[str, int]:
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "stores": self.stats.stores,
            "corrupt": self.stats.corrupt,
        }


# ----------------------------------------------------------------- simulate


def generate_cell_trace(settings: RunSettings, workload: str) -> WorkloadTrace:
    """The deterministic trace for ``workload`` under ``settings``."""
    return generate_trace(
        get_profile(workload),
        instructions=settings.instructions,
        seed=settings.seed,
        scale=settings.scale,
    )


def supervised_cell_key(cell: CellSpec) -> str:
    """The stable string key one cell carries through the supervisor."""
    return f"{cell.workload}/{cell.key or cell.mechanism}"


def simulate_cell(
    settings: RunSettings,
    cell: CellSpec,
    trace: Optional[WorkloadTrace] = None,
    paranoid: bool = False,
) -> SimulationResult:
    """Run one cell from scratch: trace -> lowering -> simulation.

    This is the single simulation implementation shared by the serial
    ``ExperimentSuite`` path and the pool workers, which is what makes the
    parallel engine bit-identical to the serial one: both call exactly this
    function with exactly these (deterministic) inputs.

    ``paranoid=True`` audits the drained MCU/HBT state through the
    invariant oracle before the result is accepted; a violated invariant
    raises :class:`~repro.errors.InvariantViolation` instead of returning
    a silently-corrupt measurement.

    ``settings.obs`` travels as picklable :class:`~repro.obs.ObsSettings`;
    each worker builds its own live :class:`~repro.obs.Observability` here
    and returns only the JSON-able snapshot in ``SimulationResult.metrics``
    — live registries and tracers never cross the process boundary.
    """
    config = cell.resolved_config(settings)
    if trace is None:
        if cell.trace_path is not None:
            # Ingested cell: the trace file is the source of truth.  The
            # import is deterministic (pure function of the file bytes),
            # so pool workers stay bit-identical to the serial path.
            from ..traces import import_trace

            trace = import_trace(cell.trace_path)
        else:
            trace = generate_cell_trace(settings, cell.workload)
    lowered = lower_trace(trace, cell.mechanism, config=config)
    inspect = None
    if paranoid:
        from ..supervise.oracle import InvariantOracle

        inspect = InvariantOracle().inspector(supervised_cell_key(cell))
    return Simulator(
        config,
        obs=settings.obs.create(),
        kernel=settings.kernel,
        guard_inject=settings.guard_inject,
    ).run(lowered, inspect=inspect)


def batch_simulate_cells(
    settings: RunSettings,
    cells: List[CellSpec],
    paranoid: bool = False,
) -> List[SimulationResult]:
    """Run ``cells`` through the cross-cell lockstep batch driver.

    Builds the same trace → lowering → observability inputs
    :func:`simulate_cell` would per cell, then advances every cell's
    specialized kernel in lockstep via :func:`repro.kernel.batch.run_batch`
    — byte-identical to per-cell runs, but amortising the driver loop and
    training each (profile × mechanism) specialization once per batch.
    """
    from ..kernel.batch import BatchCell, run_batch

    batch: List[BatchCell] = []
    for cell in cells:
        config = cell.resolved_config(settings)
        if cell.trace_path is not None:
            from ..traces import import_trace

            trace = import_trace(cell.trace_path)
        else:
            trace = generate_cell_trace(settings, cell.workload)
        inspect = None
        if paranoid:
            from ..supervise.oracle import InvariantOracle

            inspect = InvariantOracle().inspector(supervised_cell_key(cell))
        batch.append(
            BatchCell(
                label=supervised_cell_key(cell),
                config=config,
                lowered=lower_trace(trace, cell.mechanism, config=config),
                obs=settings.obs.create(),
                guard_inject=settings.guard_inject,
                inspect=inspect,
            )
        )
    return run_batch(batch)


def _cell_worker(args: Tuple) -> SimulationResult:
    # Accepts (settings, cell) and (settings, cell, paranoid): supervised
    # payloads carry the flag, plain fan-out payloads predate it.
    settings, cell = args[0], args[1]
    paranoid = bool(args[2]) if len(args) > 2 else False
    return simulate_cell(settings, cell, paranoid=paranoid)


def _batch_worker(args: Tuple) -> List[SimulationResult]:
    settings, shard, paranoid = args
    return batch_simulate_cells(settings, list(shard), paranoid=paranoid)


def _trace_worker(args: Tuple[RunSettings, str]) -> WorkloadTrace:
    settings, workload = args
    return generate_cell_trace(settings, workload)


# ------------------------------------------------------------------- engine


def _fan_out(
    items: List,
    worker: Callable,
    jobs: int,
    progress: Optional[Callable] = None,
) -> List:
    """Map ``worker`` over ``items`` with a process pool, preserving order.

    Results are collected as workers finish but returned in submission
    order, so callers observe deterministic merges.  ``jobs <= 1`` (or a
    single item) degrades to an in-process loop with no pool overhead.
    """
    if jobs <= 1 or len(items) <= 1:
        results = []
        for item in items:
            results.append(worker(item))
            if progress is not None:
                progress(item)
        return results
    by_index: Dict[int, object] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = {pool.submit(worker, item): index for index, item in enumerate(items)}
        for future in as_completed(futures):
            index = futures[future]
            by_index[index] = future.result()
            if progress is not None:
                progress(items[index])
    return [by_index[index] for index in range(len(items))]


#: ``batch=`` values accepted by :func:`run_cells`.
BATCH_MODES = ("auto", "never", "always")


def run_cells(
    settings: RunSettings,
    cells: Iterable[CellSpec],
    jobs: int = 1,
    progress: Optional[Callable[[CellSpec], None]] = None,
    paranoid: bool = False,
    batch: str = "auto",
) -> Dict[Tuple[str, str], SimulationResult]:
    """Simulate ``cells``, sharded over ``jobs`` worker processes.

    Returns ``{cell.cache_key: SimulationResult}`` in input order.  With
    ``jobs=1`` this is exactly the serial loop; with ``jobs>1`` each worker
    rebuilds its cell from the picklable spec, so results are identical.

    ``batch`` selects cross-cell lockstep batching
    (:mod:`repro.kernel.batch`): ``"auto"`` batches exactly when
    ``settings.kernel == "specialized"`` (the batch driver is that
    kernel's lockstep surface), ``"never"`` keeps per-cell runs, and
    ``"always"`` forces the batch driver.  Batched shards stay contiguous
    in input order, so same-profile cells (seed sweeps) share one
    training run per shard; results are byte-identical either way.
    """
    if batch not in BATCH_MODES:
        raise ValueError(
            f"batch must be one of {', '.join(BATCH_MODES)}; got {batch!r}"
        )
    cells = list(cells)
    batched = batch == "always" or (
        batch == "auto" and settings.kernel == "specialized"
    )
    if batched and cells:
        if jobs <= 1 or len(cells) <= 1:
            shards = [cells]
        else:
            width = -(-len(cells) // min(jobs, len(cells)))  # ceil division
            shards = [cells[i:i + width] for i in range(0, len(cells), width)]
        shard_results = _fan_out(
            [(settings, shard, paranoid) for shard in shards],
            _batch_worker,
            jobs,
        )
        results = [result for shard in shard_results for result in shard]
        if progress is not None:
            for cell in cells:
                progress(cell)
        return {cell.cache_key: result for cell, result in zip(cells, results)}
    results = _fan_out(
        [(settings, cell, paranoid) for cell in cells],
        _cell_worker,
        jobs,
        progress=None if progress is None else (lambda args: progress(args[1])),
    )
    return {cell.cache_key: result for cell, result in zip(cells, results)}


def run_cells_supervised(
    settings: RunSettings,
    cells: Iterable[CellSpec],
    config=None,
    paranoid: bool = False,
    on_result: Optional[Callable[[str, SimulationResult], None]] = None,
):
    """Simulate ``cells`` under the supervision layer.

    Like :func:`run_cells`, but hung/crashing workers are retried with
    backoff, repeat offenders are quarantined instead of failing the run,
    and execution degrades pool -> fresh-pool -> serial if workers keep
    dying.  Returns ``({cell.cache_key: SimulationResult}, report)``;
    quarantined cells are *absent* from the results dict and listed in
    ``report.quarantined`` (keyed by :func:`supervised_cell_key`), so they
    can never be mistaken for measurements or poison a cache.
    """
    from ..supervise import Supervisor, SupervisorConfig, Task

    cells = list(cells)
    tasks = [
        Task(key=supervised_cell_key(cell), payload=(settings, cell, paranoid))
        for cell in cells
    ]
    supervisor = Supervisor(config if config is not None else SupervisorConfig())
    results, report = supervisor.run(_cell_worker, tasks, on_result=on_result)
    merged = {
        cell.cache_key: results[supervised_cell_key(cell)]
        for cell in cells
        if supervised_cell_key(cell) in results
    }
    return merged, report


def generate_traces(
    settings: RunSettings,
    workloads: Iterable[str],
    jobs: int = 1,
) -> Dict[str, WorkloadTrace]:
    """Generate (deterministic) traces for ``workloads``, in parallel."""
    workloads = list(workloads)
    traces = _fan_out(
        [(settings, workload) for workload in workloads], _trace_worker, jobs
    )
    return dict(zip(workloads, traces))

"""Ablation studies for the design choices DESIGN.md calls out.

Beyond the paper's own Fig. 15 ablation (L1-B cache, bounds compression),
these sweeps quantify the remaining §V design decisions:

- **BWB geometry** (§V-C): way-prediction accuracy and checking cost as
  the buffer shrinks/grows or is disabled;
- **MCQ depth** (§V-A): issue back-pressure vs the 48-entry Table IV pick;
- **Non-blocking resize** (§V-F3): gradual migration vs stop-the-world;
- **Bounds forwarding** (§V-F2): store-to-load forwarding on malloc-heavy
  workloads;
- **Tag/PAC entropy** (§VII-E vs §X): detection probability and bypass
  effort across metadata widths.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cpu.core import Simulator
from ..security.entropy import entropy_sweep
from ..stats.report import TableFormatter
from .common import ExperimentSuite
from .parallel import CellSpec


@dataclass
class AblationResult:
    """One sweep: setting name -> metric dict."""

    title: str
    rows: Dict[str, Dict[str, float]]
    columns: List[str]

    def format(self) -> str:
        table = TableFormatter(self.columns, col_width=14)
        for name, values in self.rows.items():
            table.add_row(name, values)
        return f"{self.title}\n" + table.render()


def _run_variant(suite: ExperimentSuite, workload: str, config) -> tuple:
    """Simulate an AOS variant against the cached lowering; returns
    (normalized time, SimulationResult)."""
    suite.ensure_cells([CellSpec(workload, "baseline")])
    lowered = suite.lowered(workload, "aos", config=suite.config_for("aos"))
    base = suite.result(workload, "baseline")
    run = Simulator(config).run(lowered)
    return run.cycles / base.cycles, run


def ablation_bwb(
    suite: Optional[ExperimentSuite] = None, workload: str = "omnetpp"
) -> AblationResult:
    """BWB size sweep (§V-C): disabled vs 16/64/256 entries."""
    suite = suite or ExperimentSuite()
    base_config = suite.config_for("aos")
    rows: Dict[str, Dict[str, float]] = {}
    for entries in (0, 16, 64, 256):
        if entries == 0:
            config = base_config.with_aos_options(bwb_enabled=False)
            name = "disabled"
        else:
            config = dataclasses.replace(
                base_config,
                bwb=dataclasses.replace(base_config.bwb, entries=entries),
            )
            name = f"{entries} entries"
        time, run = _run_variant(suite, workload, config)
        rows[name] = {
            "norm.time": time,
            "acc/check": run.bounds_accesses_per_check,
            "hit rate": run.bwb_hit_rate,
        }
    return AblationResult(
        title=f"BWB geometry ablation ({workload}, §V-C)",
        rows=rows,
        columns=["norm.time", "acc/check", "hit rate"],
    )


def ablation_mcq(
    suite: Optional[ExperimentSuite] = None, workload: str = "hmmer"
) -> AblationResult:
    """MCQ depth sweep (§V-A): back-pressure around the 48-entry pick."""
    suite = suite or ExperimentSuite()
    base_config = suite.config_for("aos")
    rows: Dict[str, Dict[str, float]] = {}
    for entries in (12, 24, 48, 96, 192):
        config = dataclasses.replace(
            base_config,
            core=dataclasses.replace(base_config.core, mcq_entries=entries),
        )
        time, run = _run_variant(suite, workload, config)
        rows[f"{entries} entries"] = {
            "norm.time": time,
            "mcq stalls": run.pipeline.mcq_stall_cycles,
        }
    return AblationResult(
        title=f"MCQ depth ablation ({workload}, §V-A)",
        rows=rows,
        columns=["norm.time", "mcq stalls"],
    )


def ablation_resize(
    suite: Optional[ExperimentSuite] = None, workload: str = "omnetpp"
) -> AblationResult:
    """Non-blocking (Fig. 10) vs stop-the-world HBT resizing (§V-F3).

    Uses a *growing-live-set* variant of the workload so the capacity
    overflow (and therefore the resize) happens inside the measured
    window, where the policy difference is visible — steady-state windows
    absorb their resizes in the untimed preamble.
    """
    suite = suite or ExperimentSuite()
    from ..compiler import lower_trace
    from ..workloads import generate_trace, get_profile

    settings = suite.settings
    # An allocation *phase*: a small starting heap, a malloc storm, and a
    # live set that grows through the window — so HBT rows overflow while
    # the clock is running.  A coarse scale shrinks the PAC space so the
    # storm reaches overflow within a simulable window.
    profile = dataclasses.replace(
        get_profile(workload),
        mallocs_per_kinst=200.0,
        initial_live=64,
    )
    trace = generate_trace(
        profile,
        instructions=settings.instructions,
        seed=settings.seed,
        scale=64,
        grow_live_by=10 * settings.instructions,  # never free: pure growth
    )
    base_config = suite.config_for("baseline")
    baseline = Simulator(base_config).run(
        lower_trace(trace, "baseline", config=base_config)
    )
    rows: Dict[str, Dict[str, float]] = {}
    for nonblocking in (True, False):
        config = suite.config_for("aos").with_aos_options(
            nonblocking_resize=nonblocking
        )
        lowered = lower_trace(trace, "aos", config=config)
        run = Simulator(config).run(lowered)
        name = "non-blocking" if nonblocking else "stop-the-world"
        rows[name] = {
            "norm.time": run.cycles / baseline.cycles,
            "resizes": float(run.hbt_resizes),
        }
    return AblationResult(
        title=f"HBT resize policy ablation ({workload} growing phase, §V-F3)",
        rows=rows,
        columns=["norm.time", "resizes"],
    )


def ablation_forwarding(
    suite: Optional[ExperimentSuite] = None, workload: str = "omnetpp"
) -> AblationResult:
    """Bounds forwarding on/off (§V-F2) on a malloc-heavy workload."""
    suite = suite or ExperimentSuite()
    base_config = suite.config_for("aos")
    rows: Dict[str, Dict[str, float]] = {}
    for forwarding in (True, False):
        config = base_config.with_aos_options(bounds_forwarding=forwarding)
        time, run = _run_variant(suite, workload, config)
        rows["forwarding" if forwarding else "no forwarding"] = {
            "norm.time": time,
            "forwards": float(run.bounds_forwards),
        }
    return AblationResult(
        title=f"Bounds forwarding ablation ({workload}, §V-F2)",
        rows=rows,
        columns=["norm.time", "forwards"],
    )


def ablation_quarantine(
    suite: Optional[ExperimentSuite] = None, workload: str = "omnetpp"
) -> AblationResult:
    """Quantify §IV-C: REST's quarantine pool vs AOS's re-sign-on-free.

    "Given that the REST software framework's use of a quarantine pool
    mostly contributed to its performance overhead, avoiding the use of a
    quarantine pool will be beneficial in terms of performance."
    """
    suite = suite or ExperimentSuite()
    from ..compiler.passes import RESTLowering

    # The REST variants are lowered in-process; the two suite cells they
    # compare against can come from the parallel engine / artifact cache.
    suite.ensure_cells(
        [CellSpec(workload, "baseline"), CellSpec(workload, "aos")]
    )
    trace = suite.trace(workload)
    base = suite.result(workload, "baseline")
    rows: Dict[str, Dict[str, float]] = {}

    for quarantine in (True, False):
        config = suite.config_for("rest")
        lowered = RESTLowering(trace, config, quarantine=quarantine).lower()
        run = Simulator(config).run(lowered)
        name = "rest (quarantine)" if quarantine else "rest (no temporal)"
        rows[name] = {
            "norm.time": run.cycles / base.cycles,
            "instr.ovh": len(lowered.program) / len(
                suite.lowered(workload, "baseline").program
            ) - 1.0,
        }

    aos = suite.result(workload, "aos")
    rows["aos (re-sign)"] = {
        "norm.time": aos.cycles / base.cycles,
        "instr.ovh": len(suite.lowered(workload, "aos").program) / len(
            suite.lowered(workload, "baseline").program
        ) - 1.0,
    }
    return AblationResult(
        title=f"Temporal-safety cost: quarantine vs re-sign ({workload}, §IV-C)",
        rows=rows,
        columns=["norm.time", "instr.ovh"],
    )


def ablation_entropy() -> AblationResult:
    """Metadata-width trade-off: MTE-style tags vs AOS PACs (§VII-E/§X)."""
    rows: Dict[str, Dict[str, float]] = {}
    for row in entropy_sweep([4, 8, 11, 16, 24, 32]):
        label = f"{row.bits}-bit"
        if row.bits == 4:
            label += " (MTE)"
        elif row.bits == 16:
            label += " (AOS)"
        rows[label] = {
            "detection": row.detection,
            "tries@50%": float(row.attempts_50),
            "tries@90%": float(row.attempts_90),
        }
    return AblationResult(
        title="Metadata entropy: single-shot detection and bypass effort",
        rows=rows,
        columns=["detection", "tries@50%", "tries@90%"],
    )

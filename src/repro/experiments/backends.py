"""Pluggable storage backends for the persistent artifact cache.

:class:`~repro.experiments.parallel.ArtifactCache` historically *was* a
directory under ``~/.cache/repro``.  The distributed campaign service
(:mod:`repro.queue`) shards work across many worker processes that should
all see each other's computed artifacts, so the storage layer is now a
:class:`CacheBackend` interface with three implementations:

``LocalDirBackend``
    The original layout (``<root>/results/<sha>.json``,
    ``<root>/traces/<sha>.pkl``), byte-compatible with caches written by
    earlier versions — existing entries keep hitting.

``MemoryBackend``
    A process-local dict.  Zero I/O; for tests and ephemeral runs.

``SharedStoreBackend``
    A content-addressed store with dedup: payload bytes live once under
    ``objects/<digest>`` no matter how many fingerprints reference them,
    and ``refs/<kind>/<fingerprint>`` files map cache keys to objects.
    Identical results computed by different workers (or for different
    settings that happen to collapse to the same payload) share one blob,
    which is what makes a multi-user shared store affordable.

Backends deal in raw bytes only; serialisation (JSON for results, pickle
for traces) and corrupt-entry accounting stay in ``ArtifactCache``.  All
on-disk writes are atomic (temp file + ``os.replace``), so a SIGKILLed
worker never leaves a torn entry.

Every backend also supports enumeration (:meth:`CacheBackend.entries`)
and removal, which is what the LRU-by-mtime size cap and the
``python -m repro cache --stats/--prune`` subcommand are built on.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

#: kind -> on-disk suffix, kept for byte-compatibility with old caches.
KIND_SUFFIXES = {"results": ".json", "traces": ".pkl"}


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact, as seen by pruning/statistics."""

    kind: str
    fingerprint: str
    size: int
    #: Last-use stamp (mtime for disk backends, a logical clock in
    #: memory); the LRU prune evicts smallest stamps first.
    used: float


class CacheBackend:
    """Abstract ``(kind, fingerprint) -> bytes`` store."""

    name = "abstract"

    def read(self, kind: str, fingerprint: str) -> Optional[bytes]:
        """The stored payload, or None on a miss.  Never raises for a
        missing entry; undecodable *content* is the caller's problem."""
        raise NotImplementedError

    def write(self, kind: str, fingerprint: str, data: bytes) -> None:
        raise NotImplementedError

    def remove(self, kind: str, fingerprint: str) -> None:
        """Drop one entry; silently ignores entries that do not exist."""
        raise NotImplementedError

    def entries(self) -> List[CacheEntry]:
        """Every stored entry (unordered); the prune/stats substrate."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    # ------------------------------------------------------------ derived

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())


def _suffix(kind: str) -> str:
    return KIND_SUFFIXES.get(kind, ".bin")


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass


class LocalDirBackend(CacheBackend):
    """The classic per-user directory layout (``<root>/<kind>/<sha><sfx>``)."""

    name = "local"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, kind: str, fingerprint: str) -> Path:
        return self.root / kind / f"{fingerprint}{_suffix(kind)}"

    def read(self, kind: str, fingerprint: str) -> Optional[bytes]:
        try:
            return self._path(kind, fingerprint).read_bytes()
        except OSError:
            return None

    def write(self, kind: str, fingerprint: str, data: bytes) -> None:
        _atomic_write(self._path(kind, fingerprint), data)

    def remove(self, kind: str, fingerprint: str) -> None:
        try:
            self._path(kind, fingerprint).unlink()
        except OSError:
            pass

    def entries(self) -> List[CacheEntry]:
        found: List[CacheEntry] = []
        if not self.root.exists():
            return found
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.iterdir()):
                if path.name.startswith(".") or not path.is_file():
                    continue  # in-flight temp files are not entries
                try:
                    stat = path.stat()
                except OSError:
                    continue
                found.append(
                    CacheEntry(
                        kind=kind_dir.name,
                        fingerprint=path.name.rsplit(".", 1)[0],
                        size=stat.st_size,
                        used=stat.st_mtime,
                    )
                )
        return found

    def describe(self) -> str:
        return f"local dir @ {self.root}"


class MemoryBackend(CacheBackend):
    """In-process dict store; ``used`` is a logical access clock."""

    name = "memory"

    def __init__(self) -> None:
        self._data: Dict[Tuple[str, str], bytes] = {}
        self._used: Dict[Tuple[str, str], int] = {}
        self._clock = 0

    def _touch(self, key: Tuple[str, str]) -> None:
        self._clock += 1
        self._used[key] = self._clock

    def read(self, kind: str, fingerprint: str) -> Optional[bytes]:
        key = (kind, fingerprint)
        data = self._data.get(key)
        if data is not None:
            self._touch(key)
        return data

    def write(self, kind: str, fingerprint: str, data: bytes) -> None:
        key = (kind, fingerprint)
        self._data[key] = data
        self._touch(key)

    def remove(self, kind: str, fingerprint: str) -> None:
        self._data.pop((kind, fingerprint), None)
        self._used.pop((kind, fingerprint), None)

    def entries(self) -> List[CacheEntry]:
        return [
            CacheEntry(kind, fingerprint, len(data), float(self._used[key]))
            for key, data in self._data.items()
            for kind, fingerprint in [key]
        ]

    def describe(self) -> str:
        return f"memory ({len(self._data)} entries)"


class SharedStoreBackend(CacheBackend):
    """Content-addressed shared store with cross-fingerprint dedup.

    Layout::

        <root>/objects/<aa>/<sha256-of-bytes>   one blob per unique payload
        <root>/refs/<kind>/<fingerprint>        text file naming the blob

    Writes store the blob first, then the ref, both atomically, so a
    reader never follows a ref to a missing object *except* after a
    pruned blob — that case reads as a miss and drops the dangling ref.
    ``entries()`` charges each ref its blob's size (the user-facing
    question is "what does this fingerprint cost me"), while
    :meth:`dedup_stats` reports the physical savings.
    """

    name = "shared"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------- layout

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    def _ref_path(self, kind: str, fingerprint: str) -> Path:
        return self.root / "refs" / kind / fingerprint

    # ---------------------------------------------------------------- API

    def read(self, kind: str, fingerprint: str) -> Optional[bytes]:
        ref = self._ref_path(kind, fingerprint)
        try:
            digest = ref.read_text().strip()
        except OSError:
            return None
        obj = self._object_path(digest)
        try:
            data = obj.read_bytes()
        except OSError:
            # Dangling ref (blob pruned/corrupted away): treat as a miss
            # and drop the ref so stats stay honest.
            self.remove(kind, fingerprint)
            return None
        now = time.time()
        for path in (ref, obj):
            try:
                os.utime(path, (now, now))  # LRU stamp: refs touch blobs
            except OSError:
                pass
        return data

    def write(self, kind: str, fingerprint: str, data: bytes) -> None:
        digest = hashlib.sha256(data).hexdigest()
        obj = self._object_path(digest)
        if not obj.exists():  # dedup: identical payloads share one blob
            _atomic_write(obj, data)
        _atomic_write(self._ref_path(kind, fingerprint), digest.encode())

    def remove(self, kind: str, fingerprint: str) -> None:
        ref = self._ref_path(kind, fingerprint)
        try:
            ref.unlink()
        except OSError:
            pass

    def entries(self) -> List[CacheEntry]:
        found: List[CacheEntry] = []
        refs_root = self.root / "refs"
        if not refs_root.exists():
            return found
        sizes: Dict[str, int] = {}
        for kind_dir in sorted(refs_root.iterdir()):
            if not kind_dir.is_dir():
                continue
            for ref in sorted(kind_dir.iterdir()):
                if ref.name.startswith(".") or not ref.is_file():
                    continue
                try:
                    digest = ref.read_text().strip()
                    used = ref.stat().st_mtime
                except OSError:
                    continue
                if digest not in sizes:
                    try:
                        sizes[digest] = self._object_path(digest).stat().st_size
                    except OSError:
                        sizes[digest] = 0
                found.append(
                    CacheEntry(kind_dir.name, ref.name, sizes[digest], used)
                )
        return found

    def _live_digests(self) -> Iterator[str]:
        refs_root = self.root / "refs"
        if not refs_root.exists():
            return
        for kind_dir in refs_root.iterdir():
            if not kind_dir.is_dir():
                continue
            for ref in kind_dir.iterdir():
                if ref.name.startswith(".") or not ref.is_file():
                    continue
                try:
                    yield ref.read_text().strip()
                except OSError:
                    continue

    def collect_garbage(self) -> int:
        """Delete blobs no ref names any more; returns bytes reclaimed.

        Called after pruning refs — dedup means a blob only dies when its
        *last* referencing fingerprint is evicted.
        """
        live = set(self._live_digests())
        reclaimed = 0
        objects_root = self.root / "objects"
        if not objects_root.exists():
            return 0
        for shard in objects_root.iterdir():
            if not shard.is_dir():
                continue
            for obj in shard.iterdir():
                if obj.name.startswith(".") or obj.name in live:
                    continue
                try:
                    size = obj.stat().st_size
                    obj.unlink()
                    reclaimed += size
                except OSError:
                    pass
        return reclaimed

    def dedup_stats(self) -> Dict[str, int]:
        """Physical accounting: refs vs unique blobs vs bytes saved."""
        refs = 0
        by_digest: Dict[str, int] = {}
        for digest in self._live_digests():
            refs += 1
            by_digest[digest] = by_digest.get(digest, 0) + 1
        unique_bytes = 0
        logical_bytes = 0
        for digest, count in by_digest.items():
            try:
                size = self._object_path(digest).stat().st_size
            except OSError:
                size = 0
            unique_bytes += size
            logical_bytes += size * count
        return {
            "refs": refs,
            "objects": len(by_digest),
            "unique_bytes": unique_bytes,
            "logical_bytes": logical_bytes,
            "deduped_bytes": logical_bytes - unique_bytes,
        }

    def describe(self) -> str:
        return f"shared content-addressed store @ {self.root}"


#: CLI spelling -> backend factory taking the cache root.
BACKEND_CHOICES = ("local", "shared", "memory")


def make_backend(name: str, root: Union[None, str, Path]) -> CacheBackend:
    """Build a backend from its CLI spelling (``--cache-backend``)."""
    if name == "local":
        if root is None:
            raise ValueError("local cache backend requires a root directory")
        return LocalDirBackend(root)
    if name == "shared":
        if root is None:
            raise ValueError("shared cache backend requires a root directory")
        return SharedStoreBackend(root)
    if name == "memory":
        return MemoryBackend()
    raise ValueError(
        f"unknown cache backend {name!r}; choose from {', '.join(BACKEND_CHOICES)}"
    )

"""Experiment drivers: one module per table/figure in the paper's evaluation.

=============  =========================================================
``fig11``      PAC distribution under QARMA (§VI)
``fig14``      Normalized execution time, 5 mechanisms x 16 workloads
``fig15``      AOS optimisation ablation (L1-B cache, bounds compression)
``fig16``      Instruction mix statistics (signed/unsigned, bounds ops)
``fig17``      Bounds-table accesses per check + BWB hit rate
``fig18``      Normalized network traffic
``tables``     Table I (hardware cost), II/III (memory profiles), IV
``security``   The §VII detection matrix
=============  =========================================================

All timing experiments share an :class:`~repro.experiments.common.ExperimentSuite`
so traces are generated and lowered once per (workload, mechanism).
"""

from .backends import (
    BACKEND_CHOICES,
    CacheBackend,
    CacheEntry,
    LocalDirBackend,
    MemoryBackend,
    SharedStoreBackend,
    make_backend,
)
from .common import ExperimentSuite, RunSettings, SPEC_WORKLOADS
from .parallel import (
    ArtifactCache,
    CellSpec,
    PruneReport,
    cell_fingerprint,
    default_cache_dir,
    default_cache_max_bytes,
    run_cells,
    run_cells_supervised,
    simulate_cell,
    supervised_cell_key,
)
from .fig11 import run_fig11, Fig11Result
from .fig14 import run_fig14, Fig14Result
from .fig15 import run_fig15, Fig15Result
from .fig16 import run_fig16, Fig16Result
from .fig17 import run_fig17, Fig17Result
from .fig18 import run_fig18, Fig18Result
from .pareto import ParetoResult, run_security_pareto
from .tables import run_table1, run_table2, run_table3, run_table4

__all__ = [
    "ArtifactCache",
    "BACKEND_CHOICES",
    "CacheBackend",
    "CacheEntry",
    "CellSpec",
    "ExperimentSuite",
    "LocalDirBackend",
    "MemoryBackend",
    "PruneReport",
    "RunSettings",
    "SPEC_WORKLOADS",
    "SharedStoreBackend",
    "cell_fingerprint",
    "default_cache_dir",
    "default_cache_max_bytes",
    "make_backend",
    "run_cells",
    "run_cells_supervised",
    "simulate_cell",
    "supervised_cell_key",
    "run_fig11",
    "Fig11Result",
    "run_fig14",
    "Fig14Result",
    "run_fig15",
    "Fig15Result",
    "run_fig16",
    "Fig16Result",
    "run_fig17",
    "Fig17Result",
    "run_fig18",
    "Fig18Result",
    "ParetoResult",
    "run_security_pareto",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
]

"""Fig. 18: normalized network traffic (§IX-B).

Bytes moved between the caches and between the LLC and DRAM, normalized
to the unprotected baseline.  Paper averages: Watchdog +31 %, PA+AOS
+18 %; gcc, povray and omnetpp are the heavy AOS outliers (frequent
bounds-table accesses), with callouts of 4.2x/4.5x/3.4x on the worst
Watchdog bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..stats.report import TableFormatter, geomean
from .common import MECHANISMS, SPEC_WORKLOADS, ExperimentSuite
from .parallel import CellSpec

PAPER_AVERAGE = {"watchdog": 1.31, "pa+aos": 1.18}


@dataclass
class Fig18Result:
    #: workload -> mechanism -> normalized traffic.
    rows: Dict[str, Dict[str, float]]
    geomeans: Dict[str, float]

    def format(self) -> str:
        mechanisms = [m for m in MECHANISMS if m != "baseline"]
        table = TableFormatter(mechanisms)
        for workload, values in self.rows.items():
            table.add_row(workload, values)
        table.add_row("Geomean", self.geomeans)
        return (
            "Fig. 18 — Normalized network traffic\n"
            + table.render()
            + f"\nPaper averages: {PAPER_AVERAGE}"
        )


def run_fig18(
    suite: Optional[ExperimentSuite] = None,
    workloads: Optional[List[str]] = None,
) -> Fig18Result:
    suite = suite or ExperimentSuite()
    workloads = workloads or SPEC_WORKLOADS
    mechanisms = [m for m in MECHANISMS if m != "baseline"]

    suite.ensure_cells(
        CellSpec(workload, mechanism)
        for workload in workloads
        for mechanism in MECHANISMS
    )

    rows: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        rows[workload] = {
            mech: suite.normalized_traffic(workload, mech) for mech in mechanisms
        }
    geomeans = {
        mech: geomean([max(rows[w][mech], 1e-9) for w in workloads])
        for mech in mechanisms
    }
    return Fig18Result(rows=rows, geomeans=geomeans)

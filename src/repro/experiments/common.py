"""Shared experiment infrastructure: cached trace -> lowering -> simulation.

The paper runs each SPEC workload once per system configuration; here one
:class:`ExperimentSuite` instance memoises traces, lowered programs and
simulation results so Figs. 14/15/17/18 can share work within a session.

Long sweeps can additionally pass ``checkpoint=`` (a path): every computed
:class:`SimulationResult` is then streamed to disk, and a suite reopened on
the same path resumes with completed (workload, mechanism) cells already
in the memo cache instead of re-simulating them.  The checkpoint is keyed
on the :class:`RunSettings` fingerprint, so changing instructions/seed/
scale starts fresh rather than mixing incompatible measurements.

Two further layers live in :mod:`repro.experiments.parallel` and are wired
in here:

- ``jobs=N`` shards independent cells across worker processes whenever a
  driver prefetches its sweep through :meth:`ExperimentSuite.ensure_cells`
  (every figure driver does).  Results are bit-identical to ``jobs=1``.
- ``cache=`` attaches a persistent cross-session
  :class:`~repro.experiments.parallel.ArtifactCache`: every lookup goes
  memo -> checkpoint -> disk cache -> simulate, so a rerun on unchanged
  code re-simulates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

import dataclasses

if TYPE_CHECKING:
    from .parallel import ArtifactCache, CellSpec

from ..config import CacheConfig, MemoryHierarchyConfig, SystemConfig, default_config
from ..compiler import LoweredWorkload, lower_trace
from ..cpu.core import SimulationResult, Simulator
from ..cpu.pipeline import PipelineResult
from ..faults.checkpoint import CheckpointStore
from ..kernel import validate_kernel
from ..obs import ObsSettings, merge_snapshots
from ..workloads import WorkloadTrace, generate_trace, get_profile

#: The 16 SPEC CPU 2006 workloads, in the paper's presentation order.
SPEC_WORKLOADS: List[str] = [
    "bzip2", "gcc", "mcf", "milc", "namd", "gobmk", "soplex", "povray",
    "hmmer", "sjeng", "libquantum", "h264ref", "lbm", "omnetpp", "astar",
    "sphinx3",
]

#: The Fig. 14 mechanisms, baseline first.
MECHANISMS: List[str] = ["baseline", "watchdog", "pa", "aos", "pa+aos"]


@dataclass(frozen=True)
class RunSettings:
    """Simulation scale knobs shared by one experiment session.

    ``instructions`` is the window length per workload; ``scale`` divides
    the preamble live set (and the PAC space with it).  The defaults keep
    a full 16-workload x 5-mechanism sweep to a few minutes in pure
    Python; larger values sharpen the statistics.

    ``obs`` selects per-cell observability (disabled by default).  It is
    part of the settings — and therefore of every cache fingerprint — so
    metric-bearing results are never conflated with plain ones in the
    artifact cache or a checkpoint.

    ``kernel`` selects the simulation kernel (``"reference"``, ``"fast"``
    or ``"specialized"``, see :mod:`repro.kernel`).  Being a settings field
    it flows into workers and cache fingerprints, so cached artifacts are
    keyed by the kernel that produced them even though the kernels are
    result-equivalent by contract.

    ``guard_inject`` is the specialized kernel's deterministic
    guard-failure injection seam (see
    :func:`repro.kernel.specialize.parse_injection`): ``""`` (off),
    ``"entry"`` or ``"after:<N>"``, optionally ``"@<substr>"``-filtered by
    program name.  Cells it fires on abort to the reference kernel and
    count ``kernel.guard_abort`` — the seam tests and CI prove the
    fallback with.
    """

    instructions: int = 60_000
    seed: int = 7
    scale: int = 8
    obs: ObsSettings = ObsSettings()
    kernel: str = "reference"
    guard_inject: str = ""

    def __post_init__(self) -> None:
        validate_kernel(self.kernel)


def scaled_config(mechanism: str, scale: int) -> SystemConfig:
    """Table IV with cache capacities divided by the workload scale.

    The trace generator divides live sets (and so data footprints *and*
    the HBT) by ``scale``; shrinking the caches by the same factor
    preserves the footprint-to-capacity ratios that drive the paper's
    cache-pollution results (gcc, omnetpp).  Core/ROB/MCQ geometry is
    per-window ILP and stays at full size.
    """
    if mechanism not in SystemConfig.MECHANISMS:
        # Plugin mechanisms lower through a registered alias (e.g. a dummy
        # mechanism reusing the baseline timing model): configure for the
        # lowering that will actually run.
        from ..compiler.passes import resolve_lowering

        mechanism = resolve_lowering(mechanism)
    config = default_config(mechanism)
    if scale <= 1:
        return config

    def shrink(cache: CacheConfig) -> CacheConfig:
        size = max(cache.size_bytes // scale, cache.assoc * cache.line_bytes * 4)
        return dataclasses.replace(cache, size_bytes=size)

    memory = MemoryHierarchyConfig(
        l1i=shrink(config.memory.l1i),
        l1d=shrink(config.memory.l1d),
        l1b=shrink(config.memory.l1b),
        l2=shrink(config.memory.l2),
        dram_latency=config.memory.dram_latency,
        dram_bandwidth_gbs=config.memory.dram_bandwidth_gbs,
    )
    return dataclasses.replace(config, memory=memory)


def settings_to_payload(settings: RunSettings) -> dict:
    """JSON-able form of :class:`RunSettings` (queue campaign configs)."""
    return dataclasses.asdict(settings)


def settings_from_payload(payload: dict) -> RunSettings:
    data = dict(payload)
    data["obs"] = ObsSettings(**data.get("obs", {}))
    return RunSettings(**data)


def _result_to_payload(result: SimulationResult) -> dict:
    """JSON-able form of a :class:`SimulationResult` (nested dataclasses)."""
    return dataclasses.asdict(result)


def _result_from_payload(payload: dict) -> SimulationResult:
    data = dict(payload)
    data["pipeline"] = PipelineResult(**data["pipeline"])
    return SimulationResult(**data)


class ExperimentSuite:
    """Memoising runner for the timing experiments."""

    def __init__(
        self,
        settings: RunSettings = RunSettings(),
        checkpoint: Union[None, str, Path, CheckpointStore] = None,
        jobs: int = 1,
        cache: Union[None, str, Path, "ArtifactCache"] = None,
        supervise=None,
        paranoid: bool = False,
        batch: str = "auto",
    ) -> None:
        """``batch`` controls cross-cell lockstep batching on
        :meth:`ensure_cells` prefetches (see
        :func:`repro.experiments.parallel.run_cells`): ``"auto"`` (the
        default) batches exactly when ``settings.kernel ==
        "specialized"``, ``"never"`` forces per-cell runs, ``"always"``
        forces the batch driver regardless of the settings kernel.

        ``supervise`` attaches the supervision layer to every
        :meth:`ensure_cells` fan-out: ``True`` for the default
        :class:`~repro.supervise.SupervisorConfig`, or a config instance
        for custom deadlines/retry policy.  Each supervised prefetch
        appends its :class:`~repro.supervise.SupervisionReport` to
        :attr:`supervision_reports`; quarantined cells stay uncomputed
        (a later :meth:`result` call falls back to in-process serial
        simulation — the last rung of the degradation ladder).

        ``paranoid=True`` audits every simulated cell's drained MCU/HBT
        state through the invariant oracle; violations raise
        :class:`~repro.errors.InvariantViolation` instead of admitting a
        silently-corrupt measurement into memo/checkpoint/cache.
        """
        self.settings = settings
        self.jobs = max(1, int(jobs))
        self.paranoid = bool(paranoid)
        self.batch = batch
        self._supervise = None
        if supervise:
            from ..supervise import SupervisorConfig

            self._supervise = (
                supervise
                if isinstance(supervise, SupervisorConfig)
                else SupervisorConfig(jobs=self.jobs)
            )
        self.supervision_reports: List = []
        #: Ingested trace workloads: alias -> (file path, sha256, scale).
        self._ingested: Dict[str, Tuple[str, str, int]] = {}
        self._traces: Dict[str, WorkloadTrace] = {}
        self._lowered: Dict[Tuple[str, str], LoweredWorkload] = {}
        self._results: Dict[Tuple[str, str], SimulationResult] = {}
        self._cache = None
        if cache is not None:
            from .parallel import ArtifactCache

            self._cache = (
                cache if isinstance(cache, ArtifactCache) else ArtifactCache(cache)
            )
        self._checkpoint: Optional[CheckpointStore] = None
        if checkpoint is not None:
            if isinstance(checkpoint, CheckpointStore):
                self._checkpoint = checkpoint
            else:
                self._checkpoint = CheckpointStore(
                    checkpoint,
                    meta={
                        "kind": "experiment-suite",
                        "instructions": settings.instructions,
                        "seed": settings.seed,
                        "scale": settings.scale,
                        "kernel": settings.kernel,
                    },
                )
            for key, payload in self._checkpoint.items():
                workload, cache_key = key
                self._results[(workload, cache_key)] = _result_from_payload(payload)

    @property
    def resumed_cells(self) -> int:
        """Completed (workload, mechanism) cells restored from checkpoint."""
        return self._checkpoint.resumed_cells if self._checkpoint else 0

    @property
    def cache(self) -> Optional["ArtifactCache"]:
        """The attached persistent artifact cache, if any."""
        return self._cache

    def config_for(self, mechanism: str) -> SystemConfig:
        """The scale-matched Table IV configuration for this suite."""
        return scaled_config(mechanism, self.settings.scale)

    # ------------------------------------------------------------ ingestion

    def ingest_trace(self, path, name: Optional[str] = None) -> str:
        """Register a trace file (see :mod:`repro.traces`) as a workload.

        Returns the workload alias (default ``trace:<file stem>``) usable
        anywhere a profile name is: ``result()``, ``normalized_time()``,
        the figure drivers' ``workloads=`` lists.  The trace is imported
        once here (validating it eagerly — malformed files fail at
        ingestion, not mid-sweep); cells built for it carry the file path
        so pool workers re-import it, and are cached under the file's
        streamed sha256 digest instead of profile fingerprints.
        """
        from ..traces import import_trace, trace_digest

        path = str(path)
        trace = import_trace(path)
        if name is None:
            name = f"trace:{Path(path).stem}"
        self._ingested[name] = (path, trace_digest(path), trace.scale)
        self._traces[name] = trace
        return name

    def ingested_digest(self, workload: str) -> Optional[str]:
        """The cache-keying sha256 for an ingested workload (None if not)."""
        entry = self._ingested.get(workload)
        return entry[1] if entry else None

    def _ingested_cell(self, cell: "CellSpec") -> "CellSpec":
        """Attach ingested-trace identity to a bare cell spec, if needed."""
        entry = self._ingested.get(cell.workload)
        if entry is None or cell.trace_digest is not None:
            return cell
        path, digest, scale = entry
        return dataclasses.replace(
            cell, trace_path=path, trace_digest=digest, trace_scale=scale
        )

    # ------------------------------------------------------------- building

    def trace(self, workload: str) -> WorkloadTrace:
        if workload not in self._traces and workload in self._ingested:
            from ..traces import import_trace

            self._traces[workload] = import_trace(self._ingested[workload][0])
        if workload not in self._traces:
            trace = None
            fingerprint = None
            if self._cache is not None:
                from .parallel import trace_fingerprint

                fingerprint = trace_fingerprint(self.settings, workload)
                trace = self._cache.get_trace(fingerprint)
            if trace is None:
                trace = generate_trace(
                    get_profile(workload),
                    instructions=self.settings.instructions,
                    seed=self.settings.seed,
                    scale=self.settings.scale,
                )
                if self._cache is not None:
                    self._cache.put_trace(fingerprint, trace)
            self._traces[workload] = trace
        return self._traces[workload]

    def lowered(
        self,
        workload: str,
        mechanism: str,
        config: Optional[SystemConfig] = None,
        key: Optional[str] = None,
    ) -> LoweredWorkload:
        cache_key = (workload, key or mechanism)
        if cache_key not in self._lowered:
            self._lowered[cache_key] = lower_trace(
                self.trace(workload), mechanism, config=config
            )
        return self._lowered[cache_key]

    def result(
        self,
        workload: str,
        mechanism: str,
        config: Optional[SystemConfig] = None,
        key: Optional[str] = None,
    ) -> SimulationResult:
        cache_key = (workload, key or mechanism)
        if cache_key not in self._results:
            result = self._cached_result(workload, mechanism, config, key)
            if result is None:
                if config is None and workload in self._ingested:
                    # Ingested traces are configured for their *declared*
                    # scale, which may differ from the suite settings'.
                    config = scaled_config(mechanism, self._ingested[workload][2])
                config = config or self.config_for(mechanism)
                lowered = self.lowered(workload, mechanism, config=config, key=key)
                inspect = None
                if self.paranoid:
                    from ..supervise import InvariantOracle

                    inspect = InvariantOracle().inspector(
                        f"{workload}/{key or mechanism}"
                    )
                # A fresh Observability per cell: metric snapshots stay
                # per-cell and identical to what a pool worker returns.
                result = Simulator(
                    config,
                    obs=self.settings.obs.create(),
                    kernel=self.settings.kernel,
                    guard_inject=self.settings.guard_inject,
                ).run(
                    lowered, inspect=inspect
                )
                self._store_in_cache(workload, mechanism, config, key, result)
            self._admit(cache_key, result)
        return self._results[cache_key]

    def _cached_result(
        self,
        workload: str,
        mechanism: str,
        config: Optional[SystemConfig],
        key: Optional[str],
    ) -> Optional[SimulationResult]:
        """Disk-cache lookup for one cell (None without a cache, or on miss)."""
        if self._cache is None:
            return None
        from .parallel import CellSpec, cell_fingerprint

        cell = self._ingested_cell(CellSpec(workload, mechanism, config=config, key=key))
        payload = self._cache.get_result(cell_fingerprint(self.settings, cell))
        if payload is None:
            return None
        try:
            return _result_from_payload(payload)
        except (KeyError, TypeError):
            return None  # schema drift not caught by the code digest

    def _store_in_cache(
        self,
        workload: str,
        mechanism: str,
        config: Optional[SystemConfig],
        key: Optional[str],
        result: SimulationResult,
    ) -> None:
        if self._cache is None:
            return
        from .parallel import CellSpec, cell_fingerprint

        cell = self._ingested_cell(CellSpec(workload, mechanism, config=config, key=key))
        self._cache.put_result(
            cell_fingerprint(self.settings, cell), _result_to_payload(result)
        )

    def _admit(self, cache_key: Tuple[str, str], result: SimulationResult) -> None:
        """Install one computed/loaded result into memo + checkpoint."""
        self._results[cache_key] = result
        if self._checkpoint is not None and list(cache_key) not in self._checkpoint:
            self._checkpoint.put(list(cache_key), _result_to_payload(result))

    # ------------------------------------------------------------ prefetch

    def ensure_traces(self, workloads: Iterable[str]) -> None:
        """Warm the trace memo for ``workloads``, in parallel when ``jobs>1``.

        Traces already memoised or present in the artifact cache are not
        regenerated; the rest are produced by worker processes (generation
        is deterministic, so the parallel path is observationally identical
        to calling :meth:`trace` in a loop).
        """
        from .parallel import generate_traces, trace_fingerprint

        missing = [w for w in dict.fromkeys(workloads) if w not in self._traces]
        # Ingested workloads re-import from their file, never regenerate.
        for workload in [w for w in missing if w in self._ingested]:
            self.trace(workload)
        missing = [w for w in missing if w not in self._ingested]
        if self._cache is not None:
            still = []
            for workload in missing:
                trace = self._cache.get_trace(
                    trace_fingerprint(self.settings, workload)
                )
                if trace is None:
                    still.append(workload)
                else:
                    self._traces[workload] = trace
            missing = still
        if not missing:
            return
        for workload, trace in generate_traces(
            self.settings, missing, jobs=self.jobs
        ).items():
            self._traces[workload] = trace
            if self._cache is not None:
                self._cache.put_trace(
                    trace_fingerprint(self.settings, workload), trace
                )

    def ensure_cells(self, cells: Iterable["CellSpec"]) -> None:
        """Compute every cell not already known, sharded over ``jobs``.

        The lookup order per cell is memo -> checkpoint (loaded at open)
        -> artifact cache -> simulate; only the last bucket is fanned out
        to worker processes.  Results merge back in deterministic cell
        order, so a prefetching driver behaves identically at any ``jobs``.
        """
        from .parallel import cell_fingerprint, run_cells

        pending = []
        seen = set(self._results)
        for cell in cells:
            # Figure drivers build bare CellSpecs; stamp ingested-trace
            # identity on them here so fingerprints/workers do the right
            # thing without every driver knowing about the trace frontend.
            cell = self._ingested_cell(cell)
            if cell.cache_key in seen:
                continue
            seen.add(cell.cache_key)
            cached = self._cached_result(
                cell.workload, cell.mechanism, cell.config, cell.key
            )
            if cached is not None:
                self._admit(cell.cache_key, cached)
            else:
                pending.append(cell)
        if not pending:
            return
        if self._supervise is not None:
            from .parallel import run_cells_supervised

            computed, report = run_cells_supervised(
                self.settings,
                pending,
                config=self._supervise,
                paranoid=self.paranoid,
            )
            self.supervision_reports.append(report)
        else:
            computed = run_cells(
                self.settings,
                pending,
                jobs=self.jobs,
                paranoid=self.paranoid,
                batch=self.batch,
            )
        for cell in pending:
            if cell.cache_key not in computed:
                continue  # quarantined under supervision: never admitted
            result = computed[cell.cache_key]
            self._admit(cell.cache_key, result)
            if self._cache is not None:
                self._cache.put_result(
                    cell_fingerprint(self.settings, cell),
                    _result_to_payload(result),
                )

    def result_payloads(self) -> Dict[Tuple[str, str], dict]:
        """JSON-able snapshot of every memoised result, keyed by cell.

        ``tools/bench_trend.py`` and the determinism tests use this to
        compare serial and parallel sweeps cell by cell.
        """
        return {
            key: _result_to_payload(result)
            for key, result in sorted(self._results.items())
        }

    def metrics_snapshot(self, workloads: Optional[Iterable[str]] = None) -> dict:
        """Suite-level metrics: every memoised cell's snapshot, merged.

        Counters and histogram buckets sum across cells; gauges keep the
        maximum.  Cells simulated without observability contribute nothing.
        Deterministic: cells merge in sorted key order.
        """
        wanted = None if workloads is None else set(workloads)
        return merge_snapshots(
            result.metrics
            for (workload, _), result in sorted(self._results.items())
            if wanted is None or workload in wanted
        )

    def cell_metrics(self) -> Dict[Tuple[str, str], dict]:
        """Per-cell metric snapshots for cells that carry them."""
        return {
            key: result.metrics
            for key, result in sorted(self._results.items())
            if result.metrics
        }

    # ------------------------------------------------------ cache management
    #
    # The three memo caches grow as O(workloads x mechanisms) and are never
    # evicted — fine for one figure, unbounded for a long campaign looping
    # over settings.  cache_info()/clear_caches() let campaign drivers keep
    # memory flat between sweeps (results stay recoverable via checkpoint).

    def cache_info(self) -> Dict[str, int]:
        """Entry counts of the memo caches (traces / lowered / results)."""
        return {
            "traces": len(self._traces),
            "lowered": len(self._lowered),
            "results": len(self._results),
        }

    def clear_caches(self, traces: bool = True) -> None:
        """Drop memoised state.  ``traces=False`` keeps the (cheap to hold,
        expensive to regenerate) raw traces and clears only the lowered
        programs and simulation results."""
        if traces:
            self._traces.clear()
        self._lowered.clear()
        self._results.clear()

    # ------------------------------------------------------------ measures

    # Contract: ``config``/``key`` customise the *mechanism* cell only.  The
    # denominator is always an explicit baseline cell — by default the
    # suite's scale-matched default-config baseline — and callers comparing
    # against a non-default baseline must say so via ``baseline_config``/
    # ``baseline_key``.  (Previously these methods forwarded ``**kwargs`` to
    # the mechanism run only, so a custom ``config=`` silently compared a
    # tuned mechanism against an untuned baseline with no way to fix it.)

    def normalized_time(
        self,
        workload: str,
        mechanism: str,
        config: Optional[SystemConfig] = None,
        key: Optional[str] = None,
        baseline_config: Optional[SystemConfig] = None,
        baseline_key: Optional[str] = None,
    ) -> float:
        """``mechanism`` cycles over baseline cycles (see contract above)."""
        base = self.result(
            workload, "baseline", config=baseline_config, key=baseline_key
        )
        run = self.result(workload, mechanism, config=config, key=key)
        if base.cycles == 0:
            return 1.0  # degenerate empty-window run (mirror traffic guard)
        return run.cycles / base.cycles

    def normalized_traffic(
        self,
        workload: str,
        mechanism: str,
        config: Optional[SystemConfig] = None,
        key: Optional[str] = None,
        baseline_config: Optional[SystemConfig] = None,
        baseline_key: Optional[str] = None,
    ) -> float:
        """``mechanism`` traffic over baseline traffic (see contract above)."""
        base = self.result(
            workload, "baseline", config=baseline_config, key=baseline_key
        )
        run = self.result(workload, mechanism, config=config, key=key)
        if base.network_traffic_bytes == 0:
            return 1.0
        return run.network_traffic_bytes / base.network_traffic_bytes

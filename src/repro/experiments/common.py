"""Shared experiment infrastructure: cached trace -> lowering -> simulation.

The paper runs each SPEC workload once per system configuration; here one
:class:`ExperimentSuite` instance memoises traces, lowered programs and
simulation results so Figs. 14/15/17/18 can share work within a session.

Long sweeps can additionally pass ``checkpoint=`` (a path): every computed
:class:`SimulationResult` is then streamed to disk, and a suite reopened on
the same path resumes with completed (workload, mechanism) cells already
in the memo cache instead of re-simulating them.  The checkpoint is keyed
on the :class:`RunSettings` fingerprint, so changing instructions/seed/
scale starts fresh rather than mixing incompatible measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import dataclasses

from ..config import CacheConfig, MemoryHierarchyConfig, SystemConfig, default_config
from ..compiler import LoweredWorkload, lower_trace
from ..cpu.core import SimulationResult, Simulator
from ..cpu.pipeline import PipelineResult
from ..faults.checkpoint import CheckpointStore
from ..workloads import WorkloadTrace, generate_trace, get_profile

#: The 16 SPEC CPU 2006 workloads, in the paper's presentation order.
SPEC_WORKLOADS: List[str] = [
    "bzip2", "gcc", "mcf", "milc", "namd", "gobmk", "soplex", "povray",
    "hmmer", "sjeng", "libquantum", "h264ref", "lbm", "omnetpp", "astar",
    "sphinx3",
]

#: The Fig. 14 mechanisms, baseline first.
MECHANISMS: List[str] = ["baseline", "watchdog", "pa", "aos", "pa+aos"]


@dataclass(frozen=True)
class RunSettings:
    """Simulation scale knobs shared by one experiment session.

    ``instructions`` is the window length per workload; ``scale`` divides
    the preamble live set (and the PAC space with it).  The defaults keep
    a full 16-workload x 5-mechanism sweep to a few minutes in pure
    Python; larger values sharpen the statistics.
    """

    instructions: int = 60_000
    seed: int = 7
    scale: int = 8


def scaled_config(mechanism: str, scale: int) -> SystemConfig:
    """Table IV with cache capacities divided by the workload scale.

    The trace generator divides live sets (and so data footprints *and*
    the HBT) by ``scale``; shrinking the caches by the same factor
    preserves the footprint-to-capacity ratios that drive the paper's
    cache-pollution results (gcc, omnetpp).  Core/ROB/MCQ geometry is
    per-window ILP and stays at full size.
    """
    config = default_config(mechanism)
    if scale <= 1:
        return config

    def shrink(cache: CacheConfig) -> CacheConfig:
        size = max(cache.size_bytes // scale, cache.assoc * cache.line_bytes * 4)
        return dataclasses.replace(cache, size_bytes=size)

    memory = MemoryHierarchyConfig(
        l1i=shrink(config.memory.l1i),
        l1d=shrink(config.memory.l1d),
        l1b=shrink(config.memory.l1b),
        l2=shrink(config.memory.l2),
        dram_latency=config.memory.dram_latency,
        dram_bandwidth_gbs=config.memory.dram_bandwidth_gbs,
    )
    return dataclasses.replace(config, memory=memory)


def _result_to_payload(result: SimulationResult) -> dict:
    """JSON-able form of a :class:`SimulationResult` (nested dataclasses)."""
    return dataclasses.asdict(result)


def _result_from_payload(payload: dict) -> SimulationResult:
    data = dict(payload)
    data["pipeline"] = PipelineResult(**data["pipeline"])
    return SimulationResult(**data)


class ExperimentSuite:
    """Memoising runner for the timing experiments."""

    def __init__(
        self,
        settings: RunSettings = RunSettings(),
        checkpoint: Union[None, str, Path, CheckpointStore] = None,
    ) -> None:
        self.settings = settings
        self._traces: Dict[str, WorkloadTrace] = {}
        self._lowered: Dict[Tuple[str, str], LoweredWorkload] = {}
        self._results: Dict[Tuple[str, str], SimulationResult] = {}
        self._checkpoint: Optional[CheckpointStore] = None
        if checkpoint is not None:
            if isinstance(checkpoint, CheckpointStore):
                self._checkpoint = checkpoint
            else:
                self._checkpoint = CheckpointStore(
                    checkpoint,
                    meta={
                        "kind": "experiment-suite",
                        "instructions": settings.instructions,
                        "seed": settings.seed,
                        "scale": settings.scale,
                    },
                )
            for key, payload in self._checkpoint.items():
                workload, cache_key = key
                self._results[(workload, cache_key)] = _result_from_payload(payload)

    @property
    def resumed_cells(self) -> int:
        """Completed (workload, mechanism) cells restored from checkpoint."""
        return self._checkpoint.resumed_cells if self._checkpoint else 0

    def config_for(self, mechanism: str) -> SystemConfig:
        """The scale-matched Table IV configuration for this suite."""
        return scaled_config(mechanism, self.settings.scale)

    # ------------------------------------------------------------- building

    def trace(self, workload: str) -> WorkloadTrace:
        if workload not in self._traces:
            self._traces[workload] = generate_trace(
                get_profile(workload),
                instructions=self.settings.instructions,
                seed=self.settings.seed,
                scale=self.settings.scale,
            )
        return self._traces[workload]

    def lowered(
        self,
        workload: str,
        mechanism: str,
        config: Optional[SystemConfig] = None,
        key: Optional[str] = None,
    ) -> LoweredWorkload:
        cache_key = (workload, key or mechanism)
        if cache_key not in self._lowered:
            self._lowered[cache_key] = lower_trace(
                self.trace(workload), mechanism, config=config
            )
        return self._lowered[cache_key]

    def result(
        self,
        workload: str,
        mechanism: str,
        config: Optional[SystemConfig] = None,
        key: Optional[str] = None,
    ) -> SimulationResult:
        cache_key = (workload, key or mechanism)
        if cache_key not in self._results:
            config = config or self.config_for(mechanism)
            lowered = self.lowered(workload, mechanism, config=config, key=key)
            result = Simulator(config).run(lowered)
            self._results[cache_key] = result
            if self._checkpoint is not None:
                self._checkpoint.put(list(cache_key), _result_to_payload(result))
        return self._results[cache_key]

    # ------------------------------------------------------ cache management
    #
    # The three memo caches grow as O(workloads x mechanisms) and are never
    # evicted — fine for one figure, unbounded for a long campaign looping
    # over settings.  cache_info()/clear_caches() let campaign drivers keep
    # memory flat between sweeps (results stay recoverable via checkpoint).

    def cache_info(self) -> Dict[str, int]:
        """Entry counts of the memo caches (traces / lowered / results)."""
        return {
            "traces": len(self._traces),
            "lowered": len(self._lowered),
            "results": len(self._results),
        }

    def clear_caches(self, traces: bool = True) -> None:
        """Drop memoised state.  ``traces=False`` keeps the (cheap to hold,
        expensive to regenerate) raw traces and clears only the lowered
        programs and simulation results."""
        if traces:
            self._traces.clear()
        self._lowered.clear()
        self._results.clear()

    # ------------------------------------------------------------ measures

    def normalized_time(self, workload: str, mechanism: str, **kwargs) -> float:
        base = self.result(workload, "baseline")
        run = self.result(workload, mechanism, **kwargs)
        if base.cycles == 0:
            return 1.0  # degenerate empty-window run (mirror traffic guard)
        return run.cycles / base.cycles

    def normalized_traffic(self, workload: str, mechanism: str, **kwargs) -> float:
        base = self.result(workload, "baseline")
        run = self.result(workload, mechanism, **kwargs)
        if base.network_traffic_bytes == 0:
            return 1.0
        return run.network_traffic_bytes / base.network_traffic_bytes

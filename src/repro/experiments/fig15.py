"""Fig. 15: the AOS optimisation ablation (§IX-A "Cache pollution").

Four AOS variants over the SPEC suite, all normalized to the unprotected
baseline: no optimisation, L1-B cache only (§V-F1), bounds compression
only (§V-D), and both (the default AOS configuration).  The paper finds
the L1-B cache cuts ~10 % of overhead, compression another ~3 % on
average, with gcc and omnetpp improving by 60 % / 68 % with both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..stats.report import TableFormatter, geomean
from .common import SPEC_WORKLOADS, ExperimentSuite
from .parallel import CellSpec

#: Variant name -> (l1b_cache, bounds_compression).
VARIANTS = {
    "no-opt": (False, False),
    "l1b": (True, False),
    "compression": (False, True),
    "l1b+compression": (True, True),
}


@dataclass
class Fig15Result:
    #: workload -> variant -> normalized execution time.
    rows: Dict[str, Dict[str, float]]
    geomeans: Dict[str, float]

    def format(self) -> str:
        table = TableFormatter(list(VARIANTS), col_width=16)
        for workload, values in self.rows.items():
            table.add_row(workload, values)
        table.add_row("Geomean", self.geomeans)
        return "Fig. 15 — L1-B cache and bounds-compression ablation\n" + table.render()


def run_fig15(
    suite: Optional[ExperimentSuite] = None,
    workloads: Optional[List[str]] = None,
) -> Fig15Result:
    suite = suite or ExperimentSuite()
    workloads = workloads or SPEC_WORKLOADS

    def variant_config(l1b: bool, compression: bool):
        return suite.config_for("aos").with_aos_options(
            l1b_cache=l1b, bounds_compression=compression
        )

    suite.ensure_cells(
        [CellSpec(workload, "baseline") for workload in workloads]
        + [
            CellSpec(
                workload,
                "aos",
                config=variant_config(l1b, compression),
                key=f"aos-{variant}",
            )
            for workload in workloads
            for variant, (l1b, compression) in VARIANTS.items()
        ]
    )

    rows: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        rows[workload] = {}
        for variant, (l1b, compression) in VARIANTS.items():
            config = suite.config_for("aos").with_aos_options(
                l1b_cache=l1b, bounds_compression=compression
            )
            rows[workload][variant] = suite.normalized_time(
                workload, "aos", config=config, key=f"aos-{variant}"
            )

    geomeans = {
        variant: geomean([rows[w][variant] for w in workloads])
        for variant in VARIANTS
    }
    return Fig15Result(rows=rows, geomeans=geomeans)

"""Fig. 11: PAC value distribution by QARMA (§VI).

The paper's microbenchmark calls malloc 1 million times and computes
16-bit PACs with the published key and context, reporting
``Avg:16.0, Max:36, Min:3, Stdev: 3.99`` — i.e. QARMA-truncated PACs are
uniform enough to serve as the HBT hash.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.microbench import PACDistribution, pac_distribution

#: The paper's reported caption statistics.
PAPER_STATS = {"avg": 16.0, "max": 36, "min": 3, "stdev": 3.99}


@dataclass
class Fig11Result:
    distribution: PACDistribution

    def format(self) -> str:
        d = self.distribution
        lines = [
            "Fig. 11 — PAC distribution by QARMA "
            f"({d.n_pointers} pointers, {d.pac_bits}-bit PACs)",
            f"  measured: {d.summary()}",
            f"  paper   : Avg:{PAPER_STATS['avg']}, Max:{PAPER_STATS['max']}, "
            f"Min:{PAPER_STATS['min']}, Stdev: {PAPER_STATS['stdev']}",
        ]
        return "\n".join(lines)


def run_fig11(n: int = 1_000_000, pac_bits: int = 16) -> Fig11Result:
    """Run the 1M-malloc PAC study with real QARMA-64."""
    return Fig11Result(distribution=pac_distribution(n=n, pac_bits=pac_bits))

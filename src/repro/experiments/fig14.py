"""Fig. 14: normalized execution time of the five system configurations.

Paper headline numbers (geometric means over 16 SPEC 2006 workloads):

- Watchdog: ~1.194 (19.4 % overhead)
- PA:       ~1.0 on most workloads, ~1.1 on hmmer/omnetpp
- AOS:      ~1.084 (8.4 % overhead); gcc worst at ~2.16x; milc, namd,
  gobmk and astar slightly *better* than baseline (MCQ back-pressure
  damping wrong-path speculation)
- PA+AOS:   ~1.099 (an extra 1.5 % over AOS)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..stats.report import TableFormatter, geomean
from .common import MECHANISMS, SPEC_WORKLOADS, ExperimentSuite
from .parallel import CellSpec

#: Paper geomeans for the comparison block of EXPERIMENTS.md.
PAPER_GEOMEAN = {"watchdog": 1.194, "pa": 1.01, "aos": 1.084, "pa+aos": 1.099}


@dataclass
class Fig14Result:
    #: workload -> mechanism -> normalized execution time.
    rows: Dict[str, Dict[str, float]]
    geomeans: Dict[str, float]
    #: workload -> AOS HBT resize count (the §IX-A.1 aside).
    hbt_resizes: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        mechanisms = [m for m in MECHANISMS if m != "baseline"]
        table = TableFormatter(mechanisms)
        for workload, values in self.rows.items():
            table.add_row(workload, values)
        table.add_row("Geomean", self.geomeans)
        resizes = ", ".join(
            f"{w}({n})" for w, n in self.hbt_resizes.items() if n
        ) or "none"
        return (
            "Fig. 14 — Normalized execution time\n"
            + table.render()
            + f"\nHBT resizes during simulation: {resizes}"
            + f"\nPaper geomeans: {PAPER_GEOMEAN}"
        )


def run_fig14(
    suite: Optional[ExperimentSuite] = None,
    workloads: Optional[List[str]] = None,
) -> Fig14Result:
    suite = suite or ExperimentSuite()
    workloads = workloads or SPEC_WORKLOADS
    mechanisms = [m for m in MECHANISMS if m != "baseline"]

    # Prefetch the whole sweep (baseline included) so a ``jobs>1`` suite
    # shards the independent cells across workers; the loops below then
    # read from the memo.
    suite.ensure_cells(
        CellSpec(workload, mechanism)
        for workload in workloads
        for mechanism in MECHANISMS
    )

    rows: Dict[str, Dict[str, float]] = {}
    resizes: Dict[str, int] = {}
    for workload in workloads:
        rows[workload] = {
            mech: suite.normalized_time(workload, mech) for mech in mechanisms
        }
        resizes[workload] = suite.result(workload, "aos").hbt_resizes

    geomeans = {
        mech: geomean([rows[w][mech] for w in workloads]) for mech in mechanisms
    }
    return Fig14Result(rows=rows, geomeans=geomeans, hbt_resizes=resizes)

"""Fig. 16: statistics of instructions of interest (§IX-A).

For each workload under PA+AOS, counts per category — unsigned/signed
loads and stores, ``bndstr``/``bndclr``, and ``pac*/aut*/xpac*`` — scaled
to the paper's "per 1 B instructions" axis.  The paper's observations:
signed accesses exceed 80 % of memory ops in bzip2, gcc, hmmer and lbm
(hmmer above 99 %), and the bounds/pac instruction counts track each
workload's allocation rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa.instructions import Op
from ..stats.report import TableFormatter
from .common import SPEC_WORKLOADS, ExperimentSuite

CATEGORIES = [
    "UnsignedLoad",
    "UnsignedStore",
    "SignedLoad",
    "SignedStore",
    "bndstr/bndclr",
    "pac*/aut*/xpac*",
]

_PAC_OPS = {Op.PACIA, Op.AUTIA, Op.PACDA, Op.AUTDA, Op.PACMA, Op.AUTM, Op.XPAC, Op.XPACM}


@dataclass
class Fig16Result:
    #: workload -> category -> count per 1B instructions (millions).
    rows: Dict[str, Dict[str, float]]
    #: workload -> fraction of memory ops that are signed.
    signed_fraction: Dict[str, float]

    def format(self) -> str:
        table = TableFormatter(CATEGORIES, col_width=16)
        for workload, values in self.rows.items():
            table.add_row(workload, values, fmt="{:.1f}")
        lines = [
            "Fig. 16 — Instructions of interest (millions per 1B instructions)",
            table.render(),
            "",
            "Signed fraction of memory accesses:",
        ]
        for workload, frac in self.signed_fraction.items():
            lines.append(f"  {workload:12s} {frac:6.1%}")
        return "\n".join(lines)


def run_fig16(
    suite: Optional[ExperimentSuite] = None,
    workloads: Optional[List[str]] = None,
) -> Fig16Result:
    suite = suite or ExperimentSuite()
    workloads = workloads or SPEC_WORKLOADS

    # Fig. 16 only needs lowered programs (no simulation); prefetch the
    # traces — in parallel for a ``jobs>1`` suite, and through the artifact
    # cache when one is attached — before the serial lowering loop.
    suite.ensure_traces(workloads)

    rows: Dict[str, Dict[str, float]] = {}
    signed_fraction: Dict[str, float] = {}
    for workload in workloads:
        lowered = suite.lowered(workload, "pa+aos")
        va_mask = lowered.pointer_layout.va_mask
        counts = dict.fromkeys(CATEGORIES, 0)
        for inst in lowered.program:
            if inst.op is Op.LOAD:
                key = "SignedLoad" if inst.address > va_mask else "UnsignedLoad"
                counts[key] += 1
            elif inst.op is Op.STORE:
                key = "SignedStore" if inst.address > va_mask else "UnsignedStore"
                counts[key] += 1
            elif inst.op in (Op.BNDSTR, Op.BNDCLR):
                counts["bndstr/bndclr"] += 1
            elif inst.op in _PAC_OPS:
                counts["pac*/aut*/xpac*"] += 1

        total = len(lowered.program)
        # Scale to "millions per 1B instructions" like the paper's axis.
        scale = 1e9 / total / 1e6
        rows[workload] = {k: v * scale for k, v in counts.items()}
        mem_ops = (
            counts["UnsignedLoad"] + counts["UnsignedStore"]
            + counts["SignedLoad"] + counts["SignedStore"]
        )
        signed = counts["SignedLoad"] + counts["SignedStore"]
        signed_fraction[workload] = signed / mem_ops if mem_ops else 0.0
    return Fig16Result(rows=rows, signed_fraction=signed_fraction)

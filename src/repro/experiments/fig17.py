"""Fig. 17: bounds-table accesses per checked instruction and BWB hit rate.

The paper reports ~1 access per checked instruction for most workloads
(omnetpp highest at 1.17, driven by PAC collisions across its ~2M live
objects) and BWB hit rates above 80 % almost everywhere — evidence that
way iteration is not a significant overhead source (§IX-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..stats.report import TableFormatter
from .common import SPEC_WORKLOADS, ExperimentSuite
from .parallel import CellSpec


@dataclass
class Fig17Result:
    #: workload -> average bounds-table accesses per checked instruction.
    accesses_per_check: Dict[str, float]
    #: workload -> BWB hit rate.
    bwb_hit_rate: Dict[str, float]

    def format(self) -> str:
        table = TableFormatter(["# Access", "Hit Rate"])
        for workload in self.accesses_per_check:
            table.add_row(
                workload,
                {
                    "# Access": self.accesses_per_check[workload],
                    "Hit Rate": self.bwb_hit_rate[workload],
                },
            )
        return "Fig. 17 — Bounds-table accesses per check and BWB hit rate\n" + table.render()


def run_fig17(
    suite: Optional[ExperimentSuite] = None,
    workloads: Optional[List[str]] = None,
) -> Fig17Result:
    suite = suite or ExperimentSuite()
    workloads = workloads or SPEC_WORKLOADS
    suite.ensure_cells(CellSpec(workload, "aos") for workload in workloads)
    accesses = {}
    hits = {}
    for workload in workloads:
        result = suite.result(workload, "aos")
        accesses[workload] = result.bounds_accesses_per_check
        hits[workload] = result.bwb_hit_rate
    return Fig17Result(accesses_per_check=accesses, bwb_hit_rate=hits)

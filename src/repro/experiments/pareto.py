"""Detection-coverage vs performance-overhead Pareto figure.

Joins the adversarial-corpus coverage axis
(:class:`~repro.stats.scenario_coverage.ScenarioCoverage`) with the
Fig. 14 normalized-time machinery: for each mechanism the overhead is the
geomean of ``suite.normalized_time`` over the sweep workloads, the
coverage is the detected fraction of modeled corpus cells, and the
frontier marks the non-dominated trade-offs — the figure CryptSan/PACSan
style comparisons reduce to.

Mechanisms without a timing lowering (CHERI has none — a capability
machine changes the ISA, not just the allocator) are listed separately
with coverage only, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..stats.report import TableFormatter, geomean
from ..stats.scenario_coverage import ScenarioCoverage
from .common import ExperimentSuite
from .parallel import CellSpec

def timed_mechanisms() -> tuple:
    """Every registered mechanism with a timing lowering, registry order
    (cheri has none — a capability machine changes the ISA)."""
    from ..mechanisms.registry import REGISTRY

    return tuple(REGISTRY.timed_names())


def __getattr__(name: str):
    # PEP 562: ``TIMED_MECHANISMS`` stays importable but tracks the live
    # mechanism registry, so plugin mechanisms with lowerings join the
    # Pareto sweep without editing this module.
    if name == "TIMED_MECHANISMS":
        return timed_mechanisms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Default timing sweep: cheap but behaviourally distinct, keeping gcc —
#: the paper's worst-case AOS workload — in every Pareto run.
PARETO_WORKLOADS = ["gcc", "povray", "gobmk"]


@dataclass
class ParetoResult:
    """The joined coverage/overhead points plus the coverage-only rest."""

    #: One dict per timed mechanism: mechanism, coverage, overhead, frontier.
    points: List[dict]
    #: mechanism -> coverage for mechanisms with no timing lowering.
    untimed: Dict[str, float] = field(default_factory=dict)
    workloads: List[str] = field(default_factory=list)

    def frontier(self) -> List[str]:
        return [p["mechanism"] for p in self.points if p["frontier"]]

    def to_payload(self) -> dict:
        return {
            "kind": "security-pareto",
            "points": [dict(p) for p in self.points],
            "untimed": dict(self.untimed),
            "workloads": list(self.workloads),
            "frontier": self.frontier(),
        }

    def format(self) -> str:
        table = TableFormatter(
            columns=["coverage", "overhead", "frontier"], name_width=14
        )
        for point in self.points:
            table.add_row(
                point["mechanism"],
                {
                    "coverage": f"{100.0 * point['coverage']:.0f}%",
                    "overhead": f"{point['overhead']:.3f}x",
                    "frontier": "*" if point["frontier"] else "",
                },
            )
        lines = [
            "Detection coverage vs overhead — Pareto over the scenario corpus",
            f"(overhead: geomean normalized time over {', '.join(self.workloads)})",
            table.render(),
            "frontier: " + (", ".join(self.frontier()) or "none"),
        ]
        for mechanism, coverage in self.untimed.items():
            lines.append(
                f"coverage-only (no timing lowering): {mechanism} "
                f"{100.0 * coverage:.0f}%"
            )
        return "\n".join(lines)


def run_security_pareto(
    coverage: ScenarioCoverage,
    suite: Optional[ExperimentSuite] = None,
    workloads: Optional[List[str]] = None,
) -> ParetoResult:
    """Compute the Pareto points for every mechanism ``coverage`` saw."""
    suite = suite or ExperimentSuite()
    workloads = workloads or list(PARETO_WORKLOADS)

    lowerable = timed_mechanisms()
    timed = [m for m in coverage.mechanisms() if m in lowerable]
    untimed = {
        m: coverage.detection_rate(m)
        for m in coverage.mechanisms()
        if m not in lowerable
    }
    # Prefetch every (workload, mechanism) cell so a jobs>1 suite shards
    # them; baseline rides along as the normalization denominator.
    suite.ensure_cells(
        CellSpec(workload, mechanism)
        for workload in workloads
        for mechanism in set(timed) | {"baseline"}
    )
    overheads = {
        mechanism: geomean(
            [suite.normalized_time(workload, mechanism) for workload in workloads]
        )
        for mechanism in timed
    }
    return ParetoResult(
        points=coverage.pareto_points(overheads),
        untimed=untimed,
        workloads=workloads,
    )

"""Kernel perf-regression gate: time reference vs fast on a fixed sweep.

Runs the same lowered workloads through both simulation kernels
(``repro.kernel``), taking the minimum of ``--repeats`` timed runs per
cell (min-of-N discards scheduler noise, so the gate tracks the code, not
the machine), verifies the results are byte-identical while it is at it,
and writes a machine-readable ``BENCH_kernel.json``.

Two gates, both machine-independent because they compare *ratios*:

- **floor**: the aggregate fast/reference speedup must be at least
  ``--min-speedup`` (default 2.0x — the fast kernel's reason to exist);
- **trend**: with ``--against BENCH_kernel.json`` (the committed
  baseline), the aggregate speedup must not regress by more than
  ``--tolerance`` (default 10 %) relative to the committed speedup.

Either violation exits 2, failing the CI ``kernel-smoke`` job.

Usage::

    python tools/bench_kernel.py --quick --against BENCH_kernel.json
    python tools/bench_kernel.py --output BENCH_kernel.json   # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cpu.core import Simulator  # noqa: E402
from repro.compiler import lower_trace  # noqa: E402
from repro.experiments.common import scaled_config, _result_to_payload  # noqa: E402
from repro.kernel import KERNELS  # noqa: E402
from repro.workloads import generate_trace, get_profile  # noqa: E402

#: Cheap but behaviourally distinct cells; gcc is the paper's worst-case
#: AOS workload (most table pressure), povray/gobmk differ in branchiness
#: and allocation churn.
DEFAULT_WORKLOADS = ["gcc", "povray", "gobmk"]
DEFAULT_MECHANISMS = ["baseline", "aos"]

SEED = 7
SCALE = 8


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_kernel",
        description="Time the fast simulation kernel against the reference.",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=20_000,
        help="window length per workload (default 20000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per (cell, kernel); the minimum is kept (default 3)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI shape: 8000 instructions, 2 repeats",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=DEFAULT_WORKLOADS,
        help=f"workloads to time (default {' '.join(DEFAULT_WORKLOADS)})",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="gate: minimum aggregate fast/reference speedup (default 2.0)",
    )
    parser.add_argument(
        "--against",
        type=Path,
        default=None,
        help="committed BENCH_kernel.json to compare the speedup trend against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="gate: maximum relative speedup regression vs --against (default 0.10)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_kernel.json"),
        help="report path (default BENCH_kernel.json)",
    )
    return parser


def time_cell(workload: str, mechanism: str, instructions: int, repeats: int) -> Dict:
    """Min-of-N wall-clock per kernel for one (workload, mechanism) cell."""
    config = scaled_config(mechanism, SCALE)
    trace = generate_trace(
        get_profile(workload), instructions=instructions, seed=SEED, scale=SCALE
    )
    lowered = lower_trace(trace, mechanism, config=config)
    timings: Dict[str, float] = {}
    payloads: Dict[str, str] = {}
    for kernel in KERNELS:
        simulator = Simulator(config, kernel=kernel)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = simulator.run(lowered)
            best = min(best, time.perf_counter() - start)
        timings[kernel] = best
        payloads[kernel] = json.dumps(_result_to_payload(result), sort_keys=True)
    if payloads["fast"] != payloads["reference"]:
        raise SystemExit(
            f"FATAL: kernel divergence on {workload}/{mechanism} — "
            "run tests/test_kernel_equivalence.py"
        )
    return {
        "workload": workload,
        "mechanism": mechanism,
        "reference_s": round(timings["reference"], 6),
        "fast_s": round(timings["fast"], 6),
        "speedup": round(timings["reference"] / timings["fast"], 4),
    }


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.instructions = min(args.instructions, 8000)
        args.repeats = min(args.repeats, 2)

    cells = []
    for workload in args.workloads:
        for mechanism in DEFAULT_MECHANISMS:
            cell = time_cell(workload, mechanism, args.instructions, args.repeats)
            cells.append(cell)
            print(
                f"{workload:>8}/{mechanism:<8} reference {cell['reference_s']:.3f}s"
                f"  fast {cell['fast_s']:.3f}s  speedup {cell['speedup']:.2f}x"
            )

    # Aggregate over total time, not mean-of-ratios: that is what a full
    # sweep actually pays.
    total_reference = sum(c["reference_s"] for c in cells)
    total_fast = sum(c["fast_s"] for c in cells)
    aggregate = total_reference / total_fast

    report = {
        "schema": "repro/bench-kernel/v1",
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "settings": {
            "instructions": args.instructions,
            "repeats": args.repeats,
            "seed": SEED,
            "scale": SCALE,
            "workloads": list(args.workloads),
            "mechanisms": list(DEFAULT_MECHANISMS),
        },
        "cells": cells,
        "aggregate_speedup": round(aggregate, 4),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\naggregate speedup {aggregate:.2f}x -> {args.output}")

    status = 0
    if aggregate < args.min_speedup:
        print(
            f"GATE FAIL: aggregate speedup {aggregate:.2f}x below the "
            f"{args.min_speedup:.2f}x floor"
        )
        status = 2
    if args.against is not None and args.against.exists():
        committed = json.loads(args.against.read_text())["aggregate_speedup"]
        floor = committed * (1.0 - args.tolerance)
        verdict = "ok" if aggregate >= floor else "REGRESSION"
        print(
            f"trend vs {args.against}: committed {committed:.2f}x, "
            f"measured {aggregate:.2f}x, floor {floor:.2f}x -> {verdict}"
        )
        if aggregate < floor:
            print(
                f"GATE FAIL: speedup regressed more than "
                f"{args.tolerance:.0%} vs the committed baseline"
            )
            status = 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())

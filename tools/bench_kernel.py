"""Kernel perf-regression gate: reference vs fast vs specialized vs batched.

Runs the same lowered workloads through every simulation kernel
(``repro.kernel``), taking the minimum of ``--repeats`` timed runs per
cell (min-of-N discards scheduler noise, so the gate tracks the code, not
the machine), verifies the results are byte-identical while it is at it,
and writes a machine-readable ``BENCH_kernel.json`` (schema
``repro/bench-kernel/v2``).

Four legs:

- **reference** / **fast** — per-cell ``Simulator.run``, as in v1;
- **specialized** — per-cell ``Simulator.run(kernel="specialized")``, after
  one untimed warm-up pass that trains and compiles the specialization (the
  steady-state cost is what a sweep pays; training is a one-off);
- **batched** — one ``run_batch`` call advancing *all* cells in lockstep,
  timed as a whole (the leg a queue worker actually executes).

Gates, all machine-independent because they compare ratios:

- **floor**: the aggregate fast AND specialized speedups must each be at
  least ``--min-speedup`` (default 2.0x);
- **trend**: with ``--against BENCH_kernel.json`` (the committed baseline),
  neither aggregate speedup may regress by more than ``--tolerance``
  (default 10 %) relative to the committed value;
- **schema**: ``--check`` validates a committed report *without timing
  anything* — schema identifier, required keys, cell shape, and the
  recorded floors — and exits 2 on any drift.

Usage::

    python tools/bench_kernel.py --quick --against BENCH_kernel.json
    python tools/bench_kernel.py --output BENCH_kernel.json  # refresh baseline
    python tools/bench_kernel.py --check BENCH_kernel.json   # schema gate only
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cpu.core import Simulator  # noqa: E402
from repro.compiler import lower_trace  # noqa: E402
from repro.experiments.common import scaled_config, _result_to_payload  # noqa: E402
from repro.kernel import KERNELS  # noqa: E402
from repro.kernel.batch import BatchCell, run_batch  # noqa: E402
from repro.workloads import generate_trace, get_profile  # noqa: E402

#: Cheap but behaviourally distinct cells; gcc is the paper's worst-case
#: AOS workload (most table pressure), povray/gobmk differ in branchiness
#: and allocation churn.
DEFAULT_WORKLOADS = ["gcc", "povray", "gobmk"]
DEFAULT_MECHANISMS = ["baseline", "aos"]

SEED = 7
SCALE = 8

SCHEMA = "repro/bench-kernel/v2"

#: ``--check`` contract: these keys must exist with these shapes.
_CELL_KEYS = (
    "workload", "mechanism",
    "reference_s", "fast_s", "specialized_s",
    "fast_speedup", "specialized_speedup",
)
_AGGREGATE_KEYS = ("fast_speedup", "specialized_speedup", "batched_speedup")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_kernel",
        description="Time the simulation kernels against the reference.",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=20_000,
        help="window length per workload (default 20000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per (cell, kernel); the minimum is kept (default 3)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI shape: 8000 instructions, 2 repeats",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=DEFAULT_WORKLOADS,
        help=f"workloads to time (default {' '.join(DEFAULT_WORKLOADS)})",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="gate: minimum aggregate fast and specialized speedup (default 2.0)",
    )
    parser.add_argument(
        "--against",
        type=Path,
        default=None,
        help="committed BENCH_kernel.json to compare the speedup trend against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="gate: maximum relative speedup regression vs --against (default 0.10)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_kernel.json"),
        help="report path (default BENCH_kernel.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="REPORT",
        help="validate an existing report's schema and recorded floors "
        "(no timing); exits 2 on drift",
    )
    return parser


def check_report(path: Path, min_speedup: float) -> int:
    """Validate a committed report without re-running anything.

    Exits non-zero on: unreadable file, schema identifier drift, missing
    keys, malformed cells, or a recorded aggregate speedup below the floor.
    """
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"CHECK FAIL: cannot read {path}: {exc}")
        return 2
    problems: List[str] = []
    schema = report.get("schema")
    if schema != SCHEMA:
        problems.append(f"schema is {schema!r}, expected {SCHEMA!r}")
    for key in ("host", "settings", "cells", "batched", "aggregate"):
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    cells = report.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("cells must be a non-empty list")
    else:
        for i, cell in enumerate(cells):
            missing = [k for k in _CELL_KEYS if k not in cell]
            if missing:
                problems.append(f"cell[{i}] missing keys {missing}")
    aggregate = report.get("aggregate", {})
    for key in _AGGREGATE_KEYS:
        value = aggregate.get(key)
        if not isinstance(value, (int, float)):
            problems.append(f"aggregate.{key} missing or non-numeric")
        elif value < min_speedup:
            problems.append(
                f"aggregate.{key} {value:.2f}x below the {min_speedup:.2f}x floor"
            )
    batched = report.get("batched", {})
    if not isinstance(batched.get("total_s"), (int, float)):
        problems.append("batched.total_s missing or non-numeric")
    if problems:
        for problem in problems:
            print(f"CHECK FAIL: {problem}")
        return 2
    print(
        f"check ok: {path} schema {SCHEMA}, {len(cells)} cells, "
        f"aggregate {aggregate['specialized_speedup']:.2f}x specialized / "
        f"{aggregate['batched_speedup']:.2f}x batched"
    )
    return 0


def time_cell(workload: str, mechanism: str, instructions: int, repeats: int) -> Dict:
    """Min-of-N wall-clock per kernel for one (workload, mechanism) cell."""
    config = scaled_config(mechanism, SCALE)
    trace = generate_trace(
        get_profile(workload), instructions=instructions, seed=SEED, scale=SCALE
    )
    lowered = lower_trace(trace, mechanism, config=config)
    timings: Dict[str, float] = {}
    payloads: Dict[str, str] = {}
    for kernel in KERNELS:
        simulator = Simulator(config, kernel=kernel)
        if kernel == "specialized":
            # Untimed warm-up: the first run trains and compiles; the timed
            # runs then measure the steady state a sweep actually pays.
            simulator.run(lowered)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = simulator.run(lowered)
            best = min(best, time.perf_counter() - start)
        timings[kernel] = best
        payloads[kernel] = json.dumps(_result_to_payload(result), sort_keys=True)
    for kernel in ("fast", "specialized"):
        if payloads[kernel] != payloads["reference"]:
            raise SystemExit(
                f"FATAL: {kernel} kernel divergence on {workload}/{mechanism} — "
                "run tests/test_kernel_equivalence.py"
            )
    return {
        "workload": workload,
        "mechanism": mechanism,
        "reference_s": round(timings["reference"], 6),
        "fast_s": round(timings["fast"], 6),
        "specialized_s": round(timings["specialized"], 6),
        "fast_speedup": round(timings["reference"] / timings["fast"], 4),
        "specialized_speedup": round(
            timings["reference"] / timings["specialized"], 4
        ),
        "_payload": payloads["reference"],
    }


def time_batched(workloads: List[str], instructions: int, repeats: int,
                 cells: List[Dict]) -> float:
    """Min-of-N wall-clock for one lockstep batch over the whole sweep."""
    lowereds = []
    for workload in workloads:
        for mechanism in DEFAULT_MECHANISMS:
            config = scaled_config(mechanism, SCALE)
            trace = generate_trace(
                get_profile(workload), instructions=instructions,
                seed=SEED, scale=SCALE,
            )
            lowered = lower_trace(trace, mechanism, config=config)
            lowereds.append((f"{workload}/{mechanism}", config, lowered))

    def batch() -> List:
        return run_batch([
            BatchCell(label=label, config=config, lowered=lowered)
            for label, config, lowered in lowereds
        ])

    results = batch()  # warm-up: trains any cold profiles
    for cell, result in zip(cells, results):
        payload = json.dumps(_result_to_payload(result), sort_keys=True)
        if payload != cell["_payload"]:
            raise SystemExit(
                f"FATAL: batched divergence on {cell['workload']}/"
                f"{cell['mechanism']} — run tests/test_kernel_batch.py"
            )
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        batch()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check is not None:
        return check_report(args.check, args.min_speedup)
    if args.quick:
        args.instructions = min(args.instructions, 8000)
        args.repeats = min(args.repeats, 2)

    cells = []
    for workload in args.workloads:
        for mechanism in DEFAULT_MECHANISMS:
            cell = time_cell(workload, mechanism, args.instructions, args.repeats)
            cells.append(cell)
            print(
                f"{workload:>8}/{mechanism:<8}"
                f" reference {cell['reference_s']:.3f}s"
                f"  fast {cell['fast_s']:.3f}s ({cell['fast_speedup']:.2f}x)"
                f"  specialized {cell['specialized_s']:.3f}s"
                f" ({cell['specialized_speedup']:.2f}x)"
            )

    batched_s = time_batched(args.workloads, args.instructions, args.repeats, cells)
    for cell in cells:
        del cell["_payload"]

    # Aggregate over total time, not mean-of-ratios: that is what a full
    # sweep actually pays.
    total_reference = sum(c["reference_s"] for c in cells)
    total_fast = sum(c["fast_s"] for c in cells)
    total_specialized = sum(c["specialized_s"] for c in cells)
    aggregate = {
        "fast_speedup": round(total_reference / total_fast, 4),
        "specialized_speedup": round(total_reference / total_specialized, 4),
        "batched_speedup": round(total_reference / batched_s, 4),
    }

    report = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "settings": {
            "instructions": args.instructions,
            "repeats": args.repeats,
            "seed": SEED,
            "scale": SCALE,
            "workloads": list(args.workloads),
            "mechanisms": list(DEFAULT_MECHANISMS),
            "kernels": list(KERNELS) + ["batched"],
        },
        "cells": cells,
        "batched": {
            "total_s": round(batched_s, 6),
            "speedup": aggregate["batched_speedup"],
        },
        "aggregate": aggregate,
        # v1 compatibility: the fast-kernel aggregate under its old name,
        # so an old --against baseline still resolves.
        "aggregate_speedup": aggregate["fast_speedup"],
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\naggregate: fast {aggregate['fast_speedup']:.2f}x"
        f"  specialized {aggregate['specialized_speedup']:.2f}x"
        f"  batched {aggregate['batched_speedup']:.2f}x -> {args.output}"
    )

    status = 0
    for leg in ("fast_speedup", "specialized_speedup"):
        if aggregate[leg] < args.min_speedup:
            print(
                f"GATE FAIL: aggregate {leg.replace('_speedup', '')} speedup "
                f"{aggregate[leg]:.2f}x below the {args.min_speedup:.2f}x floor"
            )
            status = 2
    if args.against is not None and args.against.exists():
        committed = json.loads(args.against.read_text())
        committed_aggregate = committed.get("aggregate")
        if committed_aggregate is None:  # v1 baseline: fast leg only
            committed_aggregate = {
                "fast_speedup": committed["aggregate_speedup"]
            }
        committed_instructions = committed.get("settings", {}).get("instructions")
        if committed_instructions != args.instructions:
            # Speedups are shape-dependent (fixed per-run overhead weighs
            # more in short windows), so a trend comparison across shapes
            # would gate on the shape, not the code.
            print(
                f"trend skipped: shape mismatch (committed "
                f"{committed_instructions} instructions, measured "
                f"{args.instructions})"
            )
            committed_aggregate = {}
        for leg, measured in aggregate.items():
            if leg not in committed_aggregate:
                continue
            floor = committed_aggregate[leg] * (1.0 - args.tolerance)
            verdict = "ok" if measured >= floor else "REGRESSION"
            print(
                f"trend[{leg}] vs {args.against}: committed "
                f"{committed_aggregate[leg]:.2f}x, measured {measured:.2f}x, "
                f"floor {floor:.2f}x -> {verdict}"
            )
            if measured < floor:
                print(
                    f"GATE FAIL: {leg} regressed more than "
                    f"{args.tolerance:.0%} vs the committed baseline"
                )
                status = 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())

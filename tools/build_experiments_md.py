#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the archived benchmark results.

Run after ``pytest benchmarks/ --benchmark-only`` so that
``benchmarks/results/*.txt`` holds the release run's reproduced artifacts:

    python tools/build_experiments_md.py
"""

from __future__ import annotations

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

HEADER = """\
# EXPERIMENTS — paper vs. reproduction, artifact by artifact

Every table and figure in the paper's evaluation (§VI, §IX, plus the §VII
security analysis), the paper's claim about it, and what this reproduction
measures.  The embedded measurements come from the release benchmark run
(`pytest benchmarks/ --benchmark-only`); re-running refreshes the archives
under `benchmarks/results/`.

**Methodology reminder** (details in DESIGN.md): the substrate is a
trace-driven, cycle-approximate out-of-order core model over synthetic
workloads calibrated to the paper's published per-workload profiles, with
live sets and cache capacities co-scaled (factor 8) to keep
footprint-to-capacity ratios.  Absolute cycle counts are therefore not
comparable to the authors' gem5 runs; the comparisons below are about
*shape*: orderings, ratios, outliers, and which workload exhibits which
pathology.

**Ingested traces:** every artifact also runs over externally supplied
trace files (`--trace file`, `python -m repro trace-import`; schema in
DESIGN.md §4h).  Cells for an ingested workload are cached under the
streamed sha256 *digest of the trace file* plus mechanism/config/kernel —
not under the workload name or the suite's window settings, which don't
describe a file — so editing a single byte of a trace invalidates exactly
its own cells and nothing else.

---
"""

SECTIONS = [
    (
        "Fig. 11 — PAC distribution by QARMA (§VI)",
        "fig11_pac_distribution",
        """**Paper:** one million `malloc` calls, 16-bit PACs from QARMA with the
published key/context give `Avg:16.0, Max:36, Min:3, Stdev: 3.99`.

**Reproduction:** real QARMA-64 (validated against the cipher's published
test vectors), the same key/context, 2^20 allocations.  Mean and standard
deviation match exactly; Max/Min differ by a few counts because the exact
malloc address stream differs.  **Verdict: matches.**""",
    ),
    (
        "Table I — hardware overhead (§V-G)",
        "table1_hw_overhead",
        """**Paper:** CACTI 6.0 @45 nm: MCQ 1.3 KB / 0.0096 mm², BWB 384 B /
0.00285 mm², L1-B 32 KB / 0.1573 mm² (L1-D 64 KB as reference).

**Reproduction:** structure capacities derived independently from the
§V-A.1 field widths (MCQ 48 x 211 bits ≈ 1.2 KB; BWB 64 x 48 bits =
384 B exactly); area/time/energy from power laws fitted to the published
rows, all within ~25 %.  **Verdict: matches.**""",
    ),
    (
        "Table II / Table III — memory-usage profiles (§VI)",
        "table2_memory_profiles",
        """**Paper:** full-program Valgrind profiles: most SPEC workloads allocate
far more than they keep live (povray 2.46 M allocs, 11 667 max active);
real-world programs keep tiny live sets.

**Reproduction:** the published numbers are carried verbatim in the
workload profiles (they parameterise the generator) and reported; the
measured window profiles below confirm the synthetic traces honour them
(steady alloc/free balance, live sets at the scaled max-active).
**Verdict: matches by construction; window behaviour validated.**""",
    ),
    (
        "Table III — real-world benchmarks",
        "table3_realworld_profiles",
        """**Paper:** allocation counts scale with input/request volume, max-active
stays modest (all ≤ 7 592) — so the 1-way HBT's 512 K-bounds capacity is
never stressed outside SPEC.

**Reproduction:** published values verbatim, plus an end-to-end AOS run of
each real-world profile showing low overhead on all six.
**Verdict: matches.**""",
    ),
    (
        "Fig. 14 — normalized execution time (§IX-A)",
        "fig14_execution_time",
        """**Paper:** geomeans — Watchdog 1.194, PA ~1.01, AOS 1.084, PA+AOS
1.099.  gcc is the worst AOS workload at 2.16x (cache pollution), hmmer
41 % (delayed retirement, >99 % signed accesses), lbm signed-heavy but
cheap (not memory-intensive), milc/namd/gobmk/astar slightly *better*
than baseline (MCQ back-pressure curbing wrong-path speculation).  Only
omnetpp (2) and sphinx3 (1) resize the HBT.

**Reproduction:** the full shape reproduces — mechanism ordering
(Watchdog > PA+AOS ≥ AOS >> PA), gcc worst at ~2.2-2.4x, hmmer ~1.45,
lbm ~1.01, several workloads below 1.0 via the back-pressure effect, and
the HBT resize counts are exact (omnetpp 2, sphinx3 1, none elsewhere).
The AOS geomean lands a few points above the paper (~1.13-1.16 vs 1.084)
because our synthetic omnetpp/sphinx3 windows pay more bounds-miss
latency than the originals.  **Verdict: shape matches; AOS geomean
~4-7 pp high.**""",
    ),
    (
        "Fig. 15 — optimisation ablation (§IX-A)",
        "fig15_optimizations",
        """**Paper:** the L1-B cache removes ~10 % of overhead, bounds compression
another ~3 % on average; gcc and omnetpp improve by 60 % and 68 % with
both.

**Reproduction:** compression is the dominant optimisation exactly as the
paper argues ("a higher performance gain since it reduces the L2 cache
pollution as well"): uncompressed 16-byte bounds double both the table
footprint and the lines per way visit, costing gcc/omnetpp ~50-70 % of
their overhead back.  The standalone L1-B benefit is smaller in our
scaled memory system (bounds misses are L2/DRAM-bound, so segregating
the L1 moves little) — a documented scaling artefact.
**Verdict: compression effect matches; L1-B effect attenuated.**""",
    ),
    (
        "Fig. 16 — instructions of interest (§IX-A)",
        "fig16_instruction_mix",
        """**Paper:** signed accesses >80 % of memory ops in bzip2/gcc/hmmer/lbm
(hmmer >99 %); bounds/pac instruction rates track allocation rates.

**Reproduction:** same orderings (hmmer 99.5 % signed, sjeng/gobmk/namd
at the bottom; gcc/omnetpp top the bndstr/bndclr rates).
**Verdict: matches.**""",
    ),
    (
        "Fig. 17 — bounds accesses per check + BWB hit rate (§IX-A)",
        "fig17_bwb",
        """**Paper:** ~1 access per checked instruction everywhere (omnetpp
highest at 1.17 from PAC collisions); BWB hit rate >80 % for most
workloads.

**Reproduction:** ~1.0 accesses per check across the suite and >80 % BWB
hits for 12 of 16 workloads.  Differences: our malloc-heavy workloads
dip *below* 1.0 (bounds forwarding covers many just-allocated-object
checks), and mcf/sjeng sit low on BWB hits (six giant objects spanning
thousands of BWB tag windows).  **Verdict: matches with noted
deviations.**""",
    ),
    (
        "Fig. 18 — normalized network traffic (§IX-B)",
        "fig18_network_traffic",
        """**Paper:** Watchdog +31 %, PA+AOS +18 % on average; gcc, povray and
omnetpp are the AOS outliers; PA adds nothing.

**Reproduction:** Watchdog highest, PA exactly 1.0, AOS/PA+AOS positive
with gcc/povray/omnetpp/sphinx3 as the heavy rows.  Averages land a bit
low (Watchdog ~1.18, PA+AOS ~1.08-1.10) — our Watchdog lock table is
more cacheable than the real implementation's metadata spills.
**Verdict: shape matches; averages somewhat low.**""",
    ),
    (
        "§VII — security analysis",
        "security_analysis",
        """**Paper:** AOS detects heap OOB (adjacent and non-adjacent), UAF,
double free, invalid free and House of Spirit; PAC forging is impractical
(45 425 attempts for 50 % at 16 bits); AHC forging is caught by `autm`
(PA+AOS); trip-wires miss non-adjacent accesses; PA alone has no
spatial/temporal safety.

**Reproduction:** every attack is executed for real against functional
models of baseline glibc, REST, PA, MTE, Watchdog, AOS and PA+AOS.  All
of the paper's claims hold, including the contrast rows: REST misses the
non-adjacent overflow, PA misses everything spatial/temporal, 4-bit MTE
falls to a 16-guess brute force while AOS survives a 256-attempt budget.
**Verdict: matches exactly.**""",
    ),
    (
        "Adversarial scenario corpus + detection-coverage Pareto (§VII, §VII-C)",
        "security_matrix",
        """**Paper:** the §VII security table claims detection per attack class
per mechanism, and §VII-C documents plain AOS's one escape — zeroing a
pointer's AHC makes it look unsigned, so the Fig. 6 selective check skips
it; the PA+AOS variant closes the hole with an on-load `autm` (Fig. 13).

**Reproduction:** `python -m repro attack` sweeps a corpus of eleven
named, seeded exploit recipes (adjacent overflow, linear and non-linear
OOB, intra-object overflow, UAF with and without slot reuse, double
free, PAC forgery and replay, return-address corruption, and
`ahc-zero-escape` as a first-class scenario) across every mechanism
registered in the plugin registry (`repro.mechanisms`) — the paper's
seven comparison points plus four PA-based related-work baselines:
CryptSan (per-granule MAC shadow tags), PACSan (signed shadow metadata
checked on every access), PACTight (sealed pointer identities + signed
returns) and PACStack (a chained, authenticated return stack).  Each
cell compares the observed outcome against an expected-verdict oracle —
`must-detect`, `may-detect`, `known-escape` (reported by name, never a
silent pass) or `unsupported` (the adapter does not model the
primitive; an explicit verdict, not a pass).  The sweep runs under the
supervision layer by default, so a scenario that crashes or hangs the
simulator lands as a quarantined *robustness bug* — a finding of the
campaign, not a failure of it; the only failing verdict is a
`must-detect` cell that goes undetected, which makes the process exit
non-zero.  **Verdict: the full 11×12 matrix matches the oracle —
`ahc-zero-escape` is escape-confirmed on `aos` and detected on
`pa+aos` (the §VII-C/Fig. 13 contrast), while `ret-addr-corruption`
separates the return-path mechanisms (pa, pa+aos, pactight, pacstack
detect; baseline and plain aos escape-confirmed).**""",
    ),
    (
        "Detection-coverage vs overhead Pareto (CryptSan/PACSan-style comparison)",
        "security_pareto",
        """**Paper:** §X positions AOS against software PA-based sanitizers
qualitatively; the related-work papers (CryptSan, PACSan, PACTight,
PACStack) each report their own overhead/coverage trade-off.

**Reproduction:** `python -m repro attack --pareto` joins the
per-mechanism detection rate (detected fraction of *modeled* corpus
cells; crashed/timed-out cells count against) with the Fig. 14
normalized-time machinery — the geomean overhead over `gcc`, `povray`,
`gobmk` — and marks the non-dominated frontier.  Every mechanism with a
timing lowering gets a point, including all four PA-based baselines;
CHERI has no timing lowering, so it is listed coverage-only rather than
silently dropped.  The spread is the expected one: PACStack is nearly
free but protects only the return path, PACTight buys seal/unseal
temporal coverage for a few percent, CryptSan/PACSan pay per-access
shadow traffic for near-AOS coverage, and PA+AOS anchors the
high-coverage end.""",
    ),
    (
        "Design-choice ablations (beyond the paper's own figures)",
        "ablation_mcq",
        """Quantitative backing for the §V design decisions the paper fixes
without sweeping: MCQ depth (Table IV's 48 entries capture most of the
192-entry benefit on hmmer), BWB geometry, non-blocking vs stop-the-world
resizing (the §V-F3 claim, visible on an in-window allocation phase),
bounds forwarding (§V-F2), and the §IV-C quarantine comparison (REST's
quarantine pool accounts for most of its temporal-safety cost; AOS's
re-sign-on-free avoids it).  The metadata-entropy table reproduces both
headline security numbers analytically: MTE's "94 %" (§X) and the 45 425
attempts of §VII-E.""",
    ),
    (
        "Extension — the §X memory-tagging comparison, quantified",
        "ext_mte_comparison",
        """**Paper (qualitative, §X):** memory tagging has "moderate performance
overhead" but "the limited size of tags reduces security guarantees".

**Reproduction:** an MTE-style timing lowering (IRG + STG colouring at
malloc/free, free per-access checks) next to AOS on the same workloads,
with the entropy gap attached.  MTE is indeed cheaper on average — its
cost scales with allocation volume, not access volume — while its 4-bit
tags fall to a ~16-guess brute force that AOS's 16-bit PACs resist.""",
    ),
]


def main() -> None:
    parts = [HEADER]
    for title, artifact, commentary in SECTIONS:
        parts.append(f"## {title}\n")
        parts.append(commentary + "\n")
        path = RESULTS / f"{artifact}.txt"
        if path.exists():
            parts.append("```text")
            parts.append(path.read_text().rstrip())
            parts.append("```\n")
        else:
            parts.append(f"*(run `pytest benchmarks/` to regenerate {artifact})*\n")
    extra = RESULTS / "ablation_bwb.txt"
    if extra.exists():
        parts.append("```text")
        for name in (
            "ablation_bwb",
            "ablation_resize_forwarding",
            "ablation_quarantine",
            "ablation_entropy",
        ):
            p = RESULTS / f"{name}.txt"
            if p.exists():
                parts.append(p.read_text().rstrip())
                parts.append("")
        parts.append("```\n")
    parts.append(kernel_bench_section())
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


def kernel_bench_section() -> str:
    """Render the fast-kernel timing table from the committed
    ``BENCH_kernel.json`` (written by ``tools/bench_kernel.py``, gated in
    the CI ``kernel-smoke`` job)."""
    lines = [
        "## Engineering — simulation-kernel timings",
        "",
        "Both simulation kernels (`repro.kernel`) produce byte-identical",
        "results (`tests/test_kernel_equivalence.py`); the fast kernel exists",
        "purely to cut sweep wall-clock.  Timings below are min-of-N runs from",
        "the committed `BENCH_kernel.json` (refresh with",
        "`python tools/bench_kernel.py`; CI fails on a >10% speedup",
        "regression or an aggregate below 2x).",
        "",
    ]
    bench = ROOT / "BENCH_kernel.json"
    if not bench.exists():
        lines.append("*(run `python tools/bench_kernel.py` to generate the table)*")
        lines.append("")
        return "\n".join(lines)
    import json

    report = json.loads(bench.read_text())
    settings = report["settings"]
    lines.append(
        f"{settings['instructions']} instructions/cell, seed {settings['seed']}, "
        f"scale {settings['scale']}, min of {settings['repeats']} runs:"
    )
    lines.append("")
    lines.append("| workload | mechanism | reference (s) | fast (s) | speedup |")
    lines.append("|---|---|---:|---:|---:|")
    for cell in report["cells"]:
        lines.append(
            f"| {cell['workload']} | {cell['mechanism']} "
            f"| {cell['reference_s']:.3f} | {cell['fast_s']:.3f} "
            f"| {cell['speedup']:.2f}x |"
        )
    lines.append(
        f"\n**Aggregate (total time ratio): {report['aggregate_speedup']:.2f}x.**"
    )
    lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    main()

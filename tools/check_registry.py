#!/usr/bin/env python
"""Mechanism-registry consistency check (CI job + local gate).

Every registered :class:`~repro.mechanisms.registry.MechanismSpec` must be
*complete*: a working adapter factory, an oracle row for every scenario in
the adversary corpus, a kernel-support declaration consistent with its
lowering, a cache-fingerprint token, and at least one detection exception
type.  A plugin that forgets any of these fails here with the exact
omission named — before a chaos campaign silently mis-classifies its
cells or the artifact cache serves it stale results.

Run locally from the repo root::

    PYTHONPATH=src python tools/check_registry.py

Exit code 0 = consistent; 1 = problems (listed one per line on stderr).
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.adversary.scenarios import SCENARIOS, build_scenario  # noqa: E402
from repro.compiler.passes import resolve_lowering  # noqa: E402
from repro.errors import WorkloadError  # noqa: E402
from repro.mechanisms import REGISTRY, registry_fingerprint  # noqa: E402
from repro.mechanisms.registry import ORACLE_CATEGORIES  # noqa: E402

#: The adapter surface every mechanism must expose (the chaos interpreter's
#: contract); call/ret/smash_ret are optional (no-call-stack mechanisms
#: yield ``unmodeled`` verdicts instead).
ADAPTER_SURFACE = ("malloc", "free", "load", "store", "offset", "raw_write")


def check_registry() -> list:
    problems = []
    scenario_instances = {
        name: build_scenario(name) for name in SCENARIOS
    }

    for spec in REGISTRY.specs():
        where = f"mechanism {spec.name!r}"

        # -- cache-fingerprint token --------------------------------------
        if not spec.cache_token:
            problems.append(f"{where}: missing cache-fingerprint token")

        # -- detection exceptions -----------------------------------------
        if not spec.detects:
            problems.append(
                f"{where}: declares no detection exception types — every "
                "fault it raises would classify as a robustness bug"
            )

        # -- kernel-support declaration -----------------------------------
        if spec.kernel and spec.lowering is None:
            problems.append(
                f"{where}: kernel=True but no lowering (kernel support "
                "requires a timing lowering)"
            )
        if spec.lowering is not None:
            try:
                resolve_lowering(spec.name)
            except WorkloadError as exc:
                problems.append(
                    f"{where}: lowering {spec.lowering!r} does not resolve "
                    f"({exc})"
                )

        # -- oracle rows ---------------------------------------------------
        oracle = spec.oracle
        for scenario in oracle.overrides:
            if scenario not in SCENARIOS:
                problems.append(
                    f"{where}: oracle override for unknown scenario "
                    f"{scenario!r}"
                )
        for category in ORACLE_CATEGORIES:
            if oracle.expectation("-", category) is None:
                problems.append(
                    f"{where}: no oracle default for category {category!r}"
                )
        for name, instance in scenario_instances.items():
            if instance.expected(spec.name) is None:
                problems.append(
                    f"{where}: no oracle row resolves for scenario {name!r}"
                )

        # -- adapter factory -----------------------------------------------
        try:
            adapter = spec.factory()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            problems.append(f"{where}: factory raised {type(exc).__name__}: {exc}")
            continue
        if getattr(adapter, "name", None) != spec.name:
            problems.append(
                f"{where}: adapter.name {getattr(adapter, 'name', None)!r} "
                "does not match the registered name"
            )
        for attr in ADAPTER_SURFACE:
            if not hasattr(adapter, attr):
                problems.append(f"{where}: adapter lacks {attr!r}")

    return problems


def main() -> int:
    problems = check_registry()
    names = REGISTRY.names()
    if problems:
        print(
            f"registry INCONSISTENT ({len(problems)} problem(s) across "
            f"{len(names)} mechanisms):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"registry consistent: {len(names)} mechanisms "
        f"({', '.join(names)}), {len(SCENARIOS)} scenarios, "
        f"fingerprint {registry_fingerprint()}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Regenerate the committed golden trace fixtures (tests/golden/traces).

Run from the repo root after any *intentional* schema or codec change::

    PYTHONPATH=src python tools/make_golden_traces.py

Two fixture pairs, each in both wire formats:

- ``handwritten.v1.{jsonl,bin}`` — a hand-assembled stream exercising
  every record kind (including ``note``) with *no* embedded profile, so
  the importer's profile synthesis path is pinned too.  The stream also
  contains a use-after-free load and an out-of-bounds offset on purpose:
  both are valid schema (attack traces) and must keep importing cleanly.
- ``bzip2.v1.{jsonl,bin}`` — a small synthetic export (bzip2, 1200
  instructions, seed 7, scale 8) with the full profile embedded, the
  round-trip anchor.

``tests/test_traces_golden.py`` regenerates these into a temp directory
and byte-compares against the committed copies, so schema drift that
would invalidate users' existing trace files fails loudly in CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.traces import TraceHeader, TraceRecord, TraceWriter  # noqa: E402
from repro.traces.recorder import export_workload  # noqa: E402

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden" / "traces"

#: Every v1 record kind appears at least once; object 7 is freed and then
#: loaded (use-after-free), and object 3's store offset 4096 is far past
#: its 96-byte size (out-of-bounds) — both deliberately valid.
HANDWRITTEN_HEADER = TraceHeader(
    name="handwritten", scale=2, seed=11, mispredict_rate=0.03,
    meta={"purpose": "golden fixture covering every record kind"},
)
HANDWRITTEN_RECORDS = (
    TraceRecord(kind="obj", obj=0, size=64),
    TraceRecord(kind="obj", obj=1, size=128),
    TraceRecord(kind="note", text="window starts here"),
    TraceRecord(kind="alloc", obj=3, size=96),
    TraceRecord(kind="load", obj=0, offset=8),
    TraceRecord(kind="load", obj=1, offset=16, ptr=True, chase=True),
    TraceRecord(kind="store", obj=3, offset=24, ptr=True),
    TraceRecord(kind="store", obj=3, offset=4096),
    TraceRecord(kind="uload", space=0, offset=32),
    TraceRecord(kind="ustore", space=1, offset=40),
    TraceRecord(kind="call"),
    TraceRecord(kind="branch", mispredict=True),
    TraceRecord(kind="branch"),
    TraceRecord(kind="alu"),
    TraceRecord(kind="falu"),
    TraceRecord(kind="ptr"),
    TraceRecord(kind="ret"),
    TraceRecord(kind="alloc", obj=7, size=32),
    TraceRecord(kind="free", obj=7),
    TraceRecord(kind="load", obj=7, offset=0),
    TraceRecord(kind="free", obj=3),
    TraceRecord(kind="note", text="window ends here"),
)

SYNTHETIC = {"workload": "bzip2", "instructions": 1200, "seed": 7, "scale": 8}


def write_fixtures(directory) -> list:
    """Write all golden fixtures into ``directory``; returns their paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for format, extension in (("jsonl", "jsonl"), ("binary", "bin")):
        path = directory / f"handwritten.v1.{extension}"
        with TraceWriter(path, HANDWRITTEN_HEADER, format=format) as writer:
            for record in HANDWRITTEN_RECORDS:
                writer.write(record)
        paths.append(path)
        path = directory / f"{SYNTHETIC['workload']}.v1.{extension}"
        export_workload(SYNTHETIC["workload"], path, format=format, **{
            k: v for k, v in SYNTHETIC.items() if k != "workload"
        })
        paths.append(path)
    return paths


def main() -> int:
    for path in write_fixtures(GOLDEN_DIR):
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Perf-trajectory runner: time a fixed sweep serial/parallel/cached/supervised.

Runs the same reduced figure sweep four ways —

1. **serial**: a fresh ``ExperimentSuite`` with one process and no cache,
2. **parallel**: a fresh suite with ``--jobs`` workers and a cold cache,
3. **cached**: a fresh suite rerun against the now-warm artifact cache,
4. **supervised**: the parallel shape wrapped in the supervision layer
   (heartbeats, deadlines, retry machinery) to measure its overhead,

verifies the parallel/cached/supervised results are cell-for-cell identical
to the serial ones (exiting non-zero with a diff summary if they diverge —
a fault-free supervised sweep must also quarantine nothing), times a quick
fault campaign with the ``--paranoid`` invariant oracle off vs on, and
writes a machine-readable ``BENCH_experiments.json`` with wall-clock per
artifact, speedups, cache-hit rate, and both supervision overheads.  CI
uploads that file on every PR, turning the engine's speedup and the
supervisor's cost into a tracked perf trajectory.

Usage::

    python tools/bench_trend.py --jobs 4 --output BENCH_experiments.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import ExperimentSuite, RunSettings  # noqa: E402
from repro.experiments.fig14 import run_fig14  # noqa: E402
from repro.experiments.fig15 import run_fig15  # noqa: E402
from repro.experiments.fig17 import run_fig17  # noqa: E402
from repro.experiments.fig18 import run_fig18  # noqa: E402

#: Artifact name -> driver taking (suite, workloads).
DRIVERS = {
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig17": run_fig17,
    "fig18": run_fig18,
}

#: The fixed reduced sweep: cheap, behaviourally distinct, includes gcc
#: (the paper's worst-case AOS workload).
DEFAULT_WORKLOADS = ["gcc", "povray", "gobmk"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_trend",
        description="Time the experiment sweep serial vs parallel vs cached.",
    )
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--instructions", type=int, default=12_000)
    parser.add_argument("--scale", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for the parallel leg (default: cpu count)",
    )
    parser.add_argument(
        "--artifacts",
        nargs="+",
        default=list(DRIVERS),
        choices=list(DRIVERS),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache for the parallel/cached legs "
        "(default: a fresh temporary directory)",
    )
    parser.add_argument("--output", default="BENCH_experiments.json")
    return parser


def _run_sweep(
    settings: RunSettings,
    artifacts: List[str],
    workloads: List[str],
    jobs: int,
    cache: Optional[str],
    supervise=None,
) -> Dict:
    suite = ExperimentSuite(settings, jobs=jobs, cache=cache, supervise=supervise)
    timings: Dict[str, float] = {}
    for name in artifacts:
        start = time.perf_counter()
        DRIVERS[name](suite, workloads=workloads)
        timings[name] = time.perf_counter() - start
    return {
        "timings": timings,
        "total_s": sum(timings.values()),
        "payloads": suite.result_payloads(),
        "cache": suite.cache.info() if suite.cache is not None else None,
        "reports": suite.supervision_reports,
    }


def _time_quick_campaign(paranoid: bool, seed: int) -> float:
    """One ``faultinject --quick``-shaped campaign, timed."""
    from repro.faults import Campaign, CampaignConfig

    config = CampaignConfig.quick(seed=seed, paranoid=paranoid)
    start = time.perf_counter()
    Campaign(config).run()
    return time.perf_counter() - start


def _divergence(serial: Dict, other: Dict, label: str) -> List[str]:
    problems = []
    if set(serial["payloads"]) != set(other["payloads"]):
        missing = sorted(set(serial["payloads"]) ^ set(other["payloads"]))
        problems.append(f"{label}: cell sets differ ({missing})")
    for key, payload in serial["payloads"].items():
        if other["payloads"].get(key) != payload:
            problems.append(f"{label}: cell {key} diverges from the serial run")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    jobs = args.jobs or os.cpu_count() or 1
    settings = RunSettings(
        instructions=args.instructions, seed=args.seed, scale=args.scale
    )

    tmp = None
    if args.cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = tmp.name
    else:
        cache_dir = args.cache_dir

    try:
        print(f"serial sweep    ({args.artifacts} x {args.workloads})...")
        serial = _run_sweep(settings, args.artifacts, args.workloads, 1, None)
        print(f"  {serial['total_s']:.2f}s")

        print(f"parallel sweep  (jobs={jobs}, cold cache {cache_dir})...")
        parallel = _run_sweep(settings, args.artifacts, args.workloads, jobs, cache_dir)
        print(f"  {parallel['total_s']:.2f}s")

        print("cached sweep    (warm cache)...")
        cached = _run_sweep(settings, args.artifacts, args.workloads, jobs, cache_dir)
        print(f"  {cached['total_s']:.2f}s")

        print(f"supervised sweep (jobs={jobs}, no cache, supervisor wrapped)...")
        from repro.supervise import SupervisorConfig

        supervised = _run_sweep(
            settings,
            args.artifacts,
            args.workloads,
            jobs,
            None,
            supervise=SupervisorConfig(jobs=jobs),
        )
        print(f"  {supervised['total_s']:.2f}s")

        print("paranoid overhead (quick fault campaign, oracle off vs on)...")
        campaign_plain_s = _time_quick_campaign(paranoid=False, seed=args.seed)
        campaign_paranoid_s = _time_quick_campaign(paranoid=True, seed=args.seed)
        paranoid_overhead = campaign_paranoid_s / max(campaign_plain_s, 1e-9)
        print(
            f"  plain {campaign_plain_s:.2f}s, paranoid {campaign_paranoid_s:.2f}s "
            f"({paranoid_overhead:.2f}x)"
        )

        problems = (
            _divergence(serial, parallel, "parallel")
            + _divergence(serial, cached, "cached")
            + _divergence(serial, supervised, "supervised")
        )
        quarantined = sum(len(r.quarantined) for r in supervised["reports"])
        if quarantined:
            problems.append(
                f"supervised: {quarantined} cell(s) quarantined in a "
                "fault-free sweep"
            )
        if problems:
            print(
                "FATAL: parallel/cached results diverge from the serial sweep —"
                " the parallel engine must be bit-identical.  Offending cells:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 2

        cache_stats = cached["cache"]
        lookups = cache_stats["hits"] + cache_stats["misses"]
        report = {
            "schema": "bench-trend/v1",
            "host": {
                "python": platform.python_version(),
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
            },
            "settings": {
                "workloads": args.workloads,
                "artifacts": args.artifacts,
                "instructions": args.instructions,
                "scale": args.scale,
                "seed": args.seed,
                "jobs": jobs,
            },
            "artifacts": {
                name: {
                    "serial_s": round(serial["timings"][name], 4),
                    "parallel_s": round(parallel["timings"][name], 4),
                    "cached_s": round(cached["timings"][name], 4),
                }
                for name in args.artifacts
            },
            "totals": {
                "serial_s": round(serial["total_s"], 4),
                "parallel_s": round(parallel["total_s"], 4),
                "cached_s": round(cached["total_s"], 4),
                "parallel_speedup": round(
                    serial["total_s"] / max(parallel["total_s"], 1e-9), 3
                ),
                "cached_fraction_of_cold": round(
                    cached["total_s"] / max(parallel["total_s"], 1e-9), 3
                ),
            },
            "supervision": {
                "supervised_s": round(supervised["total_s"], 4),
                "overhead_vs_parallel": round(
                    supervised["total_s"] / max(parallel["total_s"], 1e-9), 3
                ),
                "retries": sum(r.retries for r in supervised["reports"]),
                "quarantined": quarantined,
                "final_levels": sorted({r.final_level for r in supervised["reports"]}),
            },
            "paranoid": {
                "campaign_plain_s": round(campaign_plain_s, 4),
                "campaign_paranoid_s": round(campaign_paranoid_s, 4),
                "overhead": round(paranoid_overhead, 3),
            },
            "cache": {
                "hits": cache_stats["hits"],
                "misses": cache_stats["misses"],
                "corrupt": cache_stats["corrupt"],
                "hit_rate": round(cache_stats["hits"] / lookups if lookups else 0.0, 3),
            },
            "divergence": "none",
        }
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(
            f"wrote {args.output}: parallel speedup "
            f"{report['totals']['parallel_speedup']}x, cached rerun "
            f"{report['totals']['cached_fraction_of_cold']}x of cold, "
            f"cache-hit rate {report['cache']['hit_rate']:.0%}, "
            f"supervisor overhead "
            f"{report['supervision']['overhead_vs_parallel']}x, "
            f"paranoid overhead {report['paranoid']['overhead']}x"
        )
        return 0
    finally:
        if tmp is not None:
            tmp.cleanup()


if __name__ == "__main__":
    sys.exit(main())

"""Extension — quantifying the §X memory-tagging comparison.

The paper dismisses MTE/ADI qualitatively ("moderate performance
overhead", "limited size of tags reduces security guarantees").  This
bench puts numbers on both halves: an MTE-style timing lowering on the
SPEC suite next to AOS, and the tag-vs-PAC entropy gap.
"""

from conftest import publish

from repro.experiments.extended import run_extended_comparison

#: Allocation-light and allocation-heavy workloads to bracket MTE's cost.
WORKLOADS = ["bzip2", "gcc", "milc", "povray", "hmmer", "omnetpp", "sphinx3", "lbm"]


def test_ext_mte_comparison(suite, benchmark):
    result = run_extended_comparison(suite, workloads=WORKLOADS)
    publish("ext_mte_comparison", result.format())

    rows = result.rows
    # MTE's cost is allocation/object-size driven: negligible on
    # allocation-light workloads, visible on the malloc storms whose
    # colouring writes scale with bytes allocated.
    assert rows["milc"]["mte"] < 1.10
    assert rows["omnetpp"]["mte"] > 1.0
    # Both mechanisms stay "moderate" on average (§X's characterisation).
    assert result.geomeans["mte"] < 1.6
    # And the geomeans are in the same ballpark — the paper's §X argument
    # against tagging is the *security* gap, not performance.
    assert abs(result.geomeans["mte"] - result.geomeans["aos"]) < 0.5

    benchmark(lambda: run_extended_comparison(suite, workloads=["milc"]))

"""§VII — Security analysis: the attack-vs-mechanism detection matrix.

Fig. 12's violation classes plus House of Spirit (Fig. 1) and PAC/AHC
forging (§VII-C), executed for real against each protection mechanism's
functional model.
"""

from conftest import publish

from repro.security import run_security_analysis
from repro.security.analysis import expected_aos


def test_security_analysis(benchmark):
    matrix = run_security_analysis()
    publish("security_analysis", matrix.format_table())

    # AOS detects everything the paper claims.
    for attack, outcome in expected_aos().items():
        assert matrix.outcome(attack, "aos") is outcome, attack
    # The motivating gaps hold.
    assert not matrix.detected("nonadjacent-oob-read", "rest")
    assert not matrix.detected("use-after-free", "pa")
    assert not matrix.detected("house-of-spirit", "baseline")

    # Benchmark the full matrix run.
    benchmark(lambda: run_security_analysis(attacks=["use-after-free", "double-free"]))

"""Fig. 16 — Statistics of instructions of interest (§IX-A).

Signed/unsigned load-store mix plus bounds and pac instruction rates per
workload.  Paper: signed accesses dominate in bzip2/gcc/hmmer/lbm (hmmer
above 99 %), and sjeng/gobmk/namd sit at the low end.
"""

from conftest import publish

from repro.compiler import lower_trace
from repro.experiments.fig16 import run_fig16


def test_fig16_instruction_mix(suite, benchmark):
    result = run_fig16(suite)
    publish("fig16_instruction_mix", result.format())

    signed = result.signed_fraction
    # The paper's signedness ordering.
    assert signed["hmmer"] > 0.99, "hmmer needs checking for >99% of accesses"
    for workload in ("bzip2", "lbm"):
        assert signed[workload] > 0.80, f"{workload} should be >80% signed"
    # gcc's heap fraction is diluted slightly by its allocator traffic.
    assert signed["gcc"] > 0.72, "gcc should be strongly signed"
    for workload in ("sjeng", "gobmk", "namd"):
        assert signed[workload] < 0.45, f"{workload} should be lightly signed"
    # Bounds-op rates track allocation rates: the §IX-A "more than 20
    # million malloc calls" pair (gcc, omnetpp) tops the chart.
    bounds = {w: row["bndstr/bndclr"] for w, row in result.rows.items()}
    top = max(bounds, key=bounds.get)
    assert top in ("gcc", "omnetpp"), top
    assert bounds["lbm"] < bounds["omnetpp"] / 100

    # Benchmark the lowering (instrumentation) pass itself.
    trace = suite.trace("povray")
    config = suite.config_for("pa+aos")
    benchmark(lambda: lower_trace(trace, "pa+aos", config=config))

"""Adversarial scenario matrix: full corpus × every mechanism adapter.

Runs the chaos campaign for real, asserts the expected-verdict contract
(every must-detect cell detected, every known escape reported by name,
never a silent pass, no robustness bugs), publishes the coverage report,
writes the committed ``results/security_matrix.json`` artifact, joins
the coverage axis with the Fig. 14 timing sweep into the committed
``results/security_pareto.txt`` Pareto figure, and benchmarks one
representative cell end to end.
"""

import json
import pathlib

from conftest import publish

from repro.adversary import ChaosCampaign, ChaosConfig, run_scenario_cell
from repro.experiments import ExperimentSuite, RunSettings, run_security_pareto
from repro.mechanisms import REGISTRY
from repro.stats import ScenarioCoverage

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_security_matrix(benchmark):
    matrix = ChaosCampaign(ChaosConfig()).run()

    # Every (scenario, mechanism) cell landed in the verdict taxonomy.
    assert len(matrix) == len(ChaosCampaign(ChaosConfig()).cells())

    # The §VII contract: no must-detect scenario goes undetected, and the
    # corpus never crashes or hangs the simulator.
    assert matrix.ok, matrix.format_report()
    assert not matrix.robustness_bugs(), matrix.format_report()

    # The §VII-C AHC-zeroing escape is a *named* known escape of plain AOS
    # (never a silent pass) and is closed by PA+AOS.
    escapes = {(run.scenario, run.mechanism) for run in matrix.known_escapes()}
    assert ("ahc-zero-escape", "aos") in escapes
    assert matrix.cell("ahc-zero-escape", "pa+aos").observed == "detected"

    # format_report embeds the ScenarioCoverage table.
    publish("security_matrix", matrix.format_report())
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "security_matrix.json", "w", encoding="utf-8") as fh:
        json.dump(matrix.to_payload(), fh, sort_keys=True, indent=1)
        fh.write("\n")

    # Coverage vs overhead Pareto: every registered mechanism with a
    # timing lowering gets a point; cheri stays coverage-only.
    coverage = ScenarioCoverage.from_matrix(matrix)
    suite = ExperimentSuite(RunSettings(instructions=12000, kernel="fast"))
    pareto = run_security_pareto(coverage, suite)
    mechanisms = {point["mechanism"] for point in pareto.points}
    assert {"cryptsan", "pacsan", "pactight", "pacstack"} <= mechanisms
    assert mechanisms == set(REGISTRY.timed_names())
    assert set(pareto.untimed) == set(REGISTRY.untimed_names())
    publish("security_pareto", pareto.format())

    # Benchmark one representative cell: build + interpret + classify.
    benchmark(lambda: run_scenario_cell(("uaf-after-realloc", "aos", 7, None)))

"""Adversarial scenario matrix: full corpus × every mechanism adapter.

Runs the chaos campaign for real, asserts the expected-verdict contract
(every must-detect cell detected, every known escape reported by name,
never a silent pass, no robustness bugs), publishes the coverage report,
writes the committed ``results/security_matrix.json`` artifact, and
benchmarks one representative cell end to end.
"""

import json
import pathlib

from conftest import publish

from repro.adversary import ChaosCampaign, ChaosConfig, run_scenario_cell

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_security_matrix(benchmark):
    matrix = ChaosCampaign(ChaosConfig()).run()

    # Every (scenario, mechanism) cell landed in the verdict taxonomy.
    assert len(matrix) == len(ChaosCampaign(ChaosConfig()).cells())

    # The §VII contract: no must-detect scenario goes undetected, and the
    # corpus never crashes or hangs the simulator.
    assert matrix.ok, matrix.format_report()
    assert not matrix.robustness_bugs(), matrix.format_report()

    # The §VII-C AHC-zeroing escape is a *named* known escape of plain AOS
    # (never a silent pass) and is closed by PA+AOS.
    escapes = {(run.scenario, run.mechanism) for run in matrix.known_escapes()}
    assert ("ahc-zero-escape", "aos") in escapes
    assert matrix.cell("ahc-zero-escape", "pa+aos").observed == "detected"

    # format_report embeds the ScenarioCoverage table.
    publish("security_matrix", matrix.format_report())
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "security_matrix.json", "w", encoding="utf-8") as fh:
        json.dump(matrix.to_payload(), fh, sort_keys=True, indent=1)
        fh.write("\n")

    # Benchmark one representative cell: build + interpret + classify.
    benchmark(lambda: run_scenario_cell(("uaf-after-realloc", "aos", 7, None)))

"""Fig. 14 — Normalized execution time across 16 SPEC workloads x 5
mechanisms (the paper's headline result: AOS ~8.4 % geomean overhead).

Also reports the §IX-A.1 HBT-resize aside (paper: only sphinx3 x1 and
omnetpp x2).
"""

from conftest import publish

from repro.cpu.core import Simulator
from repro.experiments.fig14 import run_fig14


def test_fig14_execution_time(suite, benchmark):
    result = run_fig14(suite)
    publish("fig14_execution_time", result.format())

    # Shape assertions against the paper's claims.
    geo = result.geomeans
    assert geo["watchdog"] > geo["aos"] > geo["pa"], "mechanism ordering"
    assert geo["pa+aos"] >= geo["aos"], "PA integrity adds overhead"
    assert 1.02 < geo["aos"] < 1.35, f"AOS geomean {geo['aos']:.3f} vs paper 1.084"
    assert geo["pa"] < 1.05, "PA must be near-free on average"
    # gcc is the worst AOS workload (paper: 2.16x).
    worst = max(result.rows, key=lambda w: result.rows[w]["aos"])
    assert worst == "gcc", f"worst AOS workload is {worst}, paper says gcc"
    # Back-pressure makes some workloads slightly faster than baseline.
    assert any(v < 1.0 for v in (result.rows[w]["aos"] for w in result.rows))
    # §IX-A.1: omnetpp and sphinx3 resize; nothing else does.
    assert result.hbt_resizes["omnetpp"] >= 1
    assert result.hbt_resizes["sphinx3"] >= 1
    assert result.hbt_resizes["gcc"] == 0

    # Benchmark one representative simulation (hmmer under AOS).
    config = suite.config_for("aos")
    lowered = suite.lowered("hmmer", "aos", config=config)
    benchmark(lambda: Simulator(config).run(lowered))

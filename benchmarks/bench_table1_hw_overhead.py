"""Table I — Hardware overhead of the AOS structures (§V-G).

Sizes the MCQ/BWB/L1-B from their architectural field widths and estimates
area/time/energy with the CACTI-style model; prints the reproduced table
side by side with the published CACTI 6.0 rows.  Table IV (the simulation
parameters) is reproduced alongside, since it has no compute of its own.
"""

import pytest
from conftest import publish

from repro.experiments.tables import run_table1, run_table4
from repro.hwcost.cacti import PUBLISHED_TABLE1, SRAMCostModel, table1_structures


def test_table1_hw_overhead(benchmark):
    result = run_table1()
    publish("table1_hw_overhead", result.format() + "\n\n" + run_table4().format())

    # Structure capacities derived from field widths must match the paper.
    specs = {s.name: s for s in table1_structures()}
    assert 1200 <= specs["MCQ"].size_bytes <= 1400      # paper: 1.3KB
    assert specs["BWB"].size_bytes == 384               # paper: 384B
    # Estimates land near the published CACTI values.
    for name, row in result.estimated.items():
        published_area = PUBLISHED_TABLE1[name][1]
        assert row["area_mm2"] == pytest.approx(published_area, rel=0.5)

    benchmark(lambda: SRAMCostModel().estimate(32 * 1024))

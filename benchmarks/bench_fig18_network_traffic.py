"""Fig. 18 — Normalized network traffic (§IX-B).

Bytes on the cache-to-cache and LLC-to-DRAM links, normalized to the
unprotected baseline.  Paper: Watchdog +31 % and PA+AOS +18 % on average;
gcc, povray and omnetpp are the AOS-heavy outliers.
"""

from conftest import publish

from repro.experiments.fig18 import run_fig18


def test_fig18_network_traffic(suite, benchmark):
    result = run_fig18(suite)
    publish("fig18_network_traffic", result.format())

    geo = result.geomeans
    # Watchdog moves the most metadata (24B records vs 8B bounds).
    assert geo["watchdog"] > geo["pa+aos"]
    # PA adds no metadata traffic at all.
    assert geo["pa"] == 1.0
    # AOS traffic overhead is positive but moderate.
    assert 1.0 <= geo["pa+aos"] < 1.35, f"{geo['pa+aos']:.3f} vs paper 1.18"
    # The paper's three AOS outliers are the heaviest rows.
    aos = {w: row["aos"] for w, row in result.rows.items()}
    heaviest = sorted(aos, key=aos.get, reverse=True)[:5]
    assert set(heaviest) & {"gcc", "povray", "omnetpp"}, heaviest

    # Benchmark the traffic-accounting hierarchy on one workload.
    from repro.cpu.core import Simulator

    config = suite.config_for("watchdog")
    lowered = suite.lowered("povray", "watchdog", config=config)
    benchmark(lambda: Simulator(config).run(lowered))

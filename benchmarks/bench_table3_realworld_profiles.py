"""Table III — Memory usage profiles for real-world benchmarks (§VI).

The paper's observation: allocation counts scale with input size or
request count, but the *maximum active* set stays modest for every
real-world program — the property that keeps HBT occupancy low.
"""

from conftest import publish

from repro.compiler import lower_trace
from repro.cpu.core import Simulator
from repro.experiments.common import scaled_config
from repro.experiments.tables import run_table3
from repro.stats.report import TableFormatter
from repro.workloads import generate_trace, get_profile
from repro.workloads.profiles import REALWORLD_PROFILES


def test_table3_realworld_profiles(benchmark):
    result = run_table3()

    # Run the real-world profiles through the full pipeline too: the paper
    # argues their modest live sets make AOS cheap outside SPEC.
    table = TableFormatter(["aos time", "max active"])
    rows = {}
    for name in REALWORLD_PROFILES:
        trace = generate_trace(get_profile(name), instructions=15_000, seed=3)
        baseline_cfg = scaled_config("baseline", 8)
        aos_cfg = scaled_config("aos", 8)
        base = Simulator(baseline_cfg).run(lower_trace(trace, "baseline", config=baseline_cfg))
        aos = Simulator(aos_cfg).run(lower_trace(trace, "aos", config=aos_cfg))
        rows[name] = aos.cycles / base.cycles
        table.add_row(
            name,
            {"aos time": rows[name], "max active": get_profile(name).table_max_active},
        )
    publish(
        "table3_realworld_profiles",
        result.format() + "\n\nAOS on the real-world profiles:\n" + table.render(),
    )

    published = {r.name: r for r in result.rows}
    assert published["apache"].allocations == 13360000
    assert published["md5sum"].max_active == 32
    # All real-world max-active sets are tiny vs the 512K 1-way capacity.
    assert all(r.max_active < 10000 for r in result.rows)
    # ...and AOS stays cheap on all of them (modest live sets).
    assert all(v < 1.35 for v in rows.values()), rows

    benchmark(
        lambda: generate_trace(get_profile("mysql"), instructions=10_000, seed=4)
    )

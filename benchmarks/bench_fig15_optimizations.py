"""Fig. 15 — L1-B cache and bounds-compression ablation (§IX-A).

Paper: both optimisations matter; the L1-B cache removes ~10 % of the
overhead, compression another ~3 %, and gcc/omnetpp improve the most.
"""

from conftest import publish

from repro.cpu.core import Simulator
from repro.experiments.fig15 import run_fig15

#: The paper's Fig. 15 highlights only need the pollution-prone workloads;
#: running all 16 here quadruples the (already covered) Fig. 14 sweep.
WORKLOADS = ["bzip2", "gcc", "hmmer", "povray", "omnetpp", "sphinx3", "milc", "lbm"]


def test_fig15_optimizations(suite, benchmark):
    result = run_fig15(suite, workloads=WORKLOADS)
    publish("fig15_optimizations", result.format())

    geo = result.geomeans
    # Both optimisations together must beat no optimisation on average.
    assert geo["l1b+compression"] < geo["no-opt"]
    # Each single optimisation helps on average.
    assert geo["l1b"] <= geo["no-opt"] * 1.01
    assert geo["compression"] <= geo["no-opt"] * 1.01
    # gcc and omnetpp benefit the most in the paper (60 % / 68 % lower).
    for workload in ("gcc", "omnetpp"):
        row = result.rows[workload]
        saved = (row["no-opt"] - row["l1b+compression"]) / max(row["no-opt"] - 1, 1e-9)
        assert saved > 0.15, f"{workload}: optimisations saved only {saved:.0%}"

    config = suite.config_for("aos").with_aos_options(
        l1b_cache=False, bounds_compression=False
    )
    lowered = suite.lowered("povray", "aos", config=config, key="aos-no-opt")
    benchmark(lambda: Simulator(config).run(lowered))

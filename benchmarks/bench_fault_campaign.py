"""Fault-injection campaign: detection coverage and per-cell cost.

Runs the ``faultinject --quick`` campaign (every fault kind, two
workloads) for real, asserts the §VII acceptance claims — the host always
survives (every fault lands in the outcome taxonomy) and spatial/temporal
pointer-corruption faults are detected — then benchmarks a single
injection cell end to end.
"""

from conftest import publish

from repro.faults import (
    Campaign,
    CampaignConfig,
    FaultKind,
    FaultSpec,
    RunOutcome,
)


def test_fault_campaign(benchmark):
    result = Campaign(CampaignConfig.quick()).run()
    publish("fault_campaign", result.format_report())

    # Every injected fault landed in the taxonomy; none escaped to the host.
    assert result.host_survived
    assert result.outcomes()[RunOutcome.CRASHED] == 0

    # The acceptance bucket: spatial/temporal pointer corruption >= 90%.
    assert result.pointer_corruption_rate >= 0.9, result.format_report()

    # Expected detections were detected (silent cells are the by-design
    # undetectable kinds, flagged expect_detection=False at injection).
    for cell in result.results:
        if cell.expect_detection:
            assert cell.outcome is RunOutcome.DETECTED, cell

    # Benchmark one representative cell: populate + inject + probe.
    campaign = Campaign(CampaignConfig.quick())
    spec = FaultSpec(kind=FaultKind.PTR_PAC_FLIP, location=0, seed=7)
    benchmark(lambda: campaign.run_cell("gcc", "aos", spec))

"""Table II — Memory usage profiles for SPEC 2006 workloads (§VI).

Reports the paper's published full-program profiles and validates that the
synthetic windows honour them: allocation/deallocation balance and a
steady live set near the (scaled) max-active figure.
"""

from conftest import publish

from repro.experiments.tables import run_table2
from repro.workloads import generate_trace, get_profile
from repro.workloads.profiler import profile_report, profile_trace


def test_table2_memory_profiles(suite, benchmark):
    result = run_table2()

    # Measure the window-level allocator behaviour (Valgrind-style) for
    # malloc-heavy workloads and show it next to the published table.
    measured = {
        name: profile_trace(suite.trace(name))
        for name in ("gcc", "povray", "omnetpp", "sphinx3")
    }
    trace = suite.trace("omnetpp")
    mallocs = measured["omnetpp"].allocations - len(trace.preamble)
    frees = measured["omnetpp"].deallocations
    extra = (
        f"\nMeasured window profiles (scale {trace.scale}, "
        f"{len(trace.events)} events):\n" + profile_report(measured)
    )
    publish("table2_memory_profiles", result.format() + extra)

    rows = {r.name: r for r in result.rows}
    assert len(rows) == 16
    # Published values verbatim.
    assert rows["omnetpp"].allocations == 21244416
    assert rows["mcf"].max_active == 6
    assert rows["hmmer"].allocations == rows["hmmer"].deallocations == 1474128
    # Window honours the profile: alloc ~ free in steady state.
    assert mallocs > 0 and abs(mallocs - frees) <= max(8, mallocs * 0.2)

    benchmark(
        lambda: generate_trace(get_profile("gobmk"), instructions=20_000, seed=5)
    )

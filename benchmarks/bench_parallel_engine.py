"""Parallel experiment engine — serial/parallel parity and cache economics.

Asserts the PR-level guarantees at benchmark scale (bit-identical results
at any ``jobs``, warm cache reruns that re-simulate nothing) and times the
cold vs cached paths for one representative sweep.
"""

import dataclasses

from conftest import publish

from repro.experiments import ArtifactCache, CellSpec
from repro.experiments.common import ExperimentSuite, RunSettings
from repro.experiments.parallel import run_cells

SETTINGS = RunSettings(instructions=12_000, seed=7, scale=8)

SWEEP = [
    CellSpec(workload, mechanism)
    for workload in ("gcc", "povray", "gobmk")
    for mechanism in ("baseline", "aos")
]


def _payloads(results):
    return {key: dataclasses.asdict(value) for key, value in results.items()}


def test_parallel_engine_parity_and_cache(tmp_path, benchmark):
    serial = run_cells(SETTINGS, SWEEP, jobs=1)
    parallel = run_cells(SETTINGS, SWEEP, jobs=2)
    assert _payloads(serial) == _payloads(parallel), "jobs must not change results"

    cache = ArtifactCache(tmp_path / "cache")
    cold = ExperimentSuite(SETTINGS, cache=cache)
    cold.ensure_cells(SWEEP)
    assert cache.stats.stores >= len(SWEEP)

    warm = ExperimentSuite(SETTINGS, cache=cache)
    warm.ensure_cells(SWEEP)
    assert warm.result_payloads() == cold.result_payloads()
    assert warm.cache_info()["lowered"] == 0, "warm rerun must not re-lower"

    lines = [
        "Parallel engine parity (jobs=1 vs jobs=2): identical payloads "
        f"over {len(SWEEP)} cells",
        f"artifact cache after cold+warm sweep: {cache.info()}",
    ]
    publish("parallel_engine", "\n".join(lines))

    # Benchmark the warm path: a fresh suite resolving the whole sweep
    # straight from disk (the economics the CI cached rerun relies on).
    def warm_rerun():
        suite = ExperimentSuite(SETTINGS, cache=ArtifactCache(tmp_path / "cache"))
        suite.ensure_cells(SWEEP)
        return suite

    result = benchmark(warm_rerun)
    assert result.cache_info()["results"] == len(SWEEP)

"""Fig. 17 — Bounds-table accesses per check and BWB hit rate (§IX-A).

Paper: ~1 access per checked instruction everywhere (omnetpp highest,
1.17, from PAC collisions over its huge live set); BWB hit rates above
80 % for most applications.
"""

from conftest import publish

from repro.experiments.fig17 import run_fig17


def test_fig17_bwb(suite, benchmark):
    result = run_fig17(suite)
    publish("fig17_bwb", result.format())

    accesses = result.accesses_per_check
    hits = result.bwb_hit_rate
    # Close to one access per check everywhere.
    for workload, value in accesses.items():
        assert 0.3 <= value <= 3.0, f"{workload}: {value} accesses/check"
    # The malloc-heavy workloads deviate furthest from one access/check
    # (PAC collisions push above 1; bounds forwarding pulls below).
    deviant = max(accesses, key=lambda w: abs(accesses[w] - 1.0))
    assert deviant in ("omnetpp", "sphinx3", "povray", "gcc"), deviant
    # Most applications exceed an 80 % BWB hit rate.
    above_80 = sum(1 for v in hits.values() if v > 0.8)
    assert above_80 >= len(hits) * 0.6, f"only {above_80}/16 above 80%"

    # Benchmark the MCU check path against a warm HBT.
    lowered = suite.lowered("omnetpp", "aos", config=suite.config_for("aos"))
    from repro.config import AOSOptions
    from repro.core.mcu import MemoryCheckUnit

    hbt = lowered.hbt
    mcu = MemoryCheckUnit(hbt=hbt, layout=lowered.pointer_layout, options=AOSOptions())
    pointers = [
        inst.address
        for inst in lowered.program
        if inst.address > lowered.pointer_layout.va_mask
    ][:2000]

    def check_all():
        for pointer in pointers:
            mcu.check_access(pointer)

    benchmark(check_all)

"""Shared infrastructure for the per-figure/per-table benchmarks.

One session-scoped :class:`ExperimentSuite` is shared by every benchmark so
traces are generated and programs lowered exactly once; each bench then
times a representative kernel with pytest-benchmark and regenerates its
table/figure rows, printing them and archiving them under
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import ExperimentSuite, RunSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: One window size for the whole bench session; raise for sharper stats.
BENCH_SETTINGS = RunSettings(instructions=40_000, seed=7, scale=8)


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite(BENCH_SETTINGS)


def publish(name: str, text: str) -> None:
    """Print a reproduced figure/table and archive it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

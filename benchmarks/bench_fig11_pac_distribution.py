"""Fig. 11 — PAC distribution by QARMA (§VI).

Regenerates the million-malloc PAC histogram with the real QARMA-64 cipher
and the paper's published key/context, and benchmarks the batched QARMA
kernel itself.
"""

from conftest import publish

from repro.experiments.fig11 import PAPER_STATS, run_fig11
from repro.workloads.microbench import pac_distribution


def test_fig11_pac_distribution(benchmark):
    # The paper's "1 million" calls must be 2^20 for the reported Avg of
    # exactly 16.0 (2^20 / 2^16 PAC values).
    result = run_fig11(n=1 << 20, pac_bits=16)
    publish("fig11_pac_distribution", result.format())

    d = result.distribution
    # The paper's caption statistics, within sampling tolerance.
    assert d.mean == PAPER_STATS["avg"]
    assert abs(d.stdev - PAPER_STATS["stdev"]) < 0.3
    assert abs(d.max - PAPER_STATS["max"]) <= 8
    assert abs(d.min - PAPER_STATS["min"]) <= 4

    # Benchmark the QARMA-64 batch kernel (256K PACs per round).
    benchmark(lambda: pac_distribution(n=1 << 18, pac_bits=16))

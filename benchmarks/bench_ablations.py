"""Ablation benches for the DESIGN.md §4 design-choice list.

Not figures from the paper itself, but the quantitative backing for its
design decisions: BWB geometry, MCQ depth, non-blocking resize, bounds
forwarding, and the metadata-entropy trade-off against memory tagging.
"""

from conftest import publish

from repro.experiments.ablations import (
    ablation_bwb,
    ablation_entropy,
    ablation_forwarding,
    ablation_mcq,
    ablation_quarantine,
    ablation_resize,
)


def test_ablation_bwb(suite, benchmark):
    result = ablation_bwb(suite, workload="omnetpp")
    publish("ablation_bwb", result.format())

    rows = result.rows
    # A bigger BWB never searches more ways per check.
    assert rows["256 entries"]["acc/check"] <= rows["16 entries"]["acc/check"] + 0.05
    # Disabling the BWB cannot beat the 64-entry Table IV design.
    assert rows["disabled"]["norm.time"] >= rows["64 entries"]["norm.time"] - 0.02

    benchmark(lambda: ablation_entropy())


def test_ablation_mcq(suite, benchmark):
    result = ablation_mcq(suite, workload="hmmer")
    publish("ablation_mcq", result.format())

    rows = result.rows
    # A deeper MCQ relieves issue back-pressure monotonically (roughly).
    assert rows["192 entries"]["norm.time"] <= rows["12 entries"]["norm.time"]
    # The Table IV pick (48) captures most of the benefit of 192.
    gap = rows["48 entries"]["norm.time"] - rows["192 entries"]["norm.time"]
    assert gap < 0.25

    benchmark(lambda: ablation_entropy())


def test_ablation_resize_and_forwarding(suite, benchmark):
    resize = ablation_resize(suite, workload="omnetpp")
    forwarding = ablation_forwarding(suite, workload="omnetpp")
    publish(
        "ablation_resize_forwarding",
        resize.format() + "\n\n" + forwarding.format(),
    )

    # Non-blocking resizing must not be slower than stop-the-world.
    assert (
        resize.rows["non-blocking"]["norm.time"]
        <= resize.rows["stop-the-world"]["norm.time"] + 0.01
    )
    # Forwarding helps a malloc-heavy workload (§V-F2).
    assert (
        forwarding.rows["forwarding"]["norm.time"]
        <= forwarding.rows["no forwarding"]["norm.time"] + 0.01
    )
    assert forwarding.rows["forwarding"]["forwards"] > 0

    benchmark(lambda: ablation_entropy())


def test_ablation_quarantine(suite, benchmark):
    """§IV-C: the quarantine pool dominates REST's temporal-safety cost;
    AOS's re-sign-on-free avoids it entirely."""
    result = ablation_quarantine(suite, workload="omnetpp")
    publish("ablation_quarantine", result.format())

    with_q = result.rows["rest (quarantine)"]["norm.time"] - 1.0
    without_q = result.rows["rest (no temporal)"]["norm.time"] - 1.0
    # The quarantine accounts for the majority of REST's overhead (§IV-C).
    assert with_q > without_q
    assert (with_q - without_q) / max(with_q, 1e-9) > 0.4

    benchmark(lambda: ablation_entropy())


def test_ablation_entropy(benchmark):
    result = ablation_entropy()
    publish("ablation_entropy", result.format())

    rows = result.rows
    assert rows["4-bit (MTE)"]["detection"] == 0.9375     # the §X "94%"
    assert rows["16-bit (AOS)"]["tries@50%"] == 45425     # §VII-E
    assert rows["32-bit"]["tries@50%"] > rows["16-bit (AOS)"]["tries@50%"]

    benchmark(lambda: ablation_entropy())
